package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero value = %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("count = %d, want 42", c.Load())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("count = %d, want 8000", c.Load())
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 46, 47}, {1 << 60, 47}, // clamped to the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1106 {
		t.Fatalf("count=%d sum=%d, want 5/1106", s.Count, s.Sum)
	}
	if s.Mean != 1106.0/5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// P50 of {1,2,3,100,1000} is 3 → bucket [2,4) → upper bound 3.
	if s.P50 != 3 {
		t.Fatalf("p50 = %d, want 3", s.P50)
	}
	// P99 lands in the bucket of 1000: [512,1024) → upper bound 1023.
	if s.P99 != 1023 {
		t.Fatalf("p99 = %d, want 1023", s.P99)
	}
	if s.Max != 1023 {
		t.Fatalf("max = %d, want 1023", s.Max)
	}
	total := int64(0)
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 5 {
		t.Fatalf("bucket total = %d, want 5", total)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestSnapshotJSON(t *testing.T) {
	var h Histogram
	h.Observe(5)
	out, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"count":1`, `"sum":5`, `"buckets"`} {
		if !contains(string(out), want) {
			t.Fatalf("json %s missing %s", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestHotPathNoAllocs is the acceptance gate for instrumenting insert and
// read paths: recording a metric must never allocate.
func TestHotPathNoAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		h.Observe(1234)
	})
	if n != 0 {
		t.Fatalf("hot path allocates %v times per run, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
