package metrics

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	var c Counter
	if c.Load() != 0 {
		t.Fatalf("zero value = %d", c.Load())
	}
	c.Inc()
	c.Add(41)
	if c.Load() != 42 {
		t.Fatalf("count = %d, want 42", c.Load())
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if g.Load() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Load())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 8000 {
		t.Fatalf("count = %d, want 8000", c.Load())
	}
}

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 46, 47}, {1 << 60, 47}, // clamped to the last bucket
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 1106 {
		t.Fatalf("count=%d sum=%d, want 5/1106", s.Count, s.Sum)
	}
	if s.Mean != 1106.0/5 {
		t.Fatalf("mean = %v", s.Mean)
	}
	// P50 of {1,2,3,100,1000} is 3 → bucket [2,4) → upper bound 3.
	if s.P50 != 3 {
		t.Fatalf("p50 = %d, want 3", s.P50)
	}
	// P99 lands in the bucket of 1000: [512,1024) → upper bound 1023.
	if s.P99 != 1023 {
		t.Fatalf("p99 = %d, want 1023", s.P99)
	}
	if s.Max != 1023 {
		t.Fatalf("max = %d, want 1023", s.Max)
	}
	total := int64(0)
	for _, b := range s.Buckets {
		total += b.Count
	}
	if total != 5 {
		t.Fatalf("bucket total = %d, want 5", total)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Mean != 0 || s.P50 != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestQuantileBounds pins the estimator's error contract: for any
// observation set, Quantile(q) is an upper bound on the true q-quantile
// and stays strictly below twice it (the power-of-two bucket width). The
// SLO lag thresholds lean on exactly this one-sidedness — a lag budget
// compared against Quantile can flag late dispatch but never falsely
// acquit it.
func TestQuantileBounds(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15) // splitmix64 walk, deterministic
	next := func() uint64 {
		rng += 0x9e3779b97f4a7c15
		z := rng
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	var h Histogram
	var obs []int64
	for i := 0; i < 5000; i++ {
		v := int64(next() % 1_000_000)
		h.Observe(v)
		obs = append(obs, v)
	}
	sorted := append([]int64(nil), obs...)
	sortInt64s(sorted)
	for _, q := range []float64{0.01, 0.25, 0.50, 0.90, 0.99, 1.0} {
		rank := int(q*float64(len(sorted))+0.9999999) - 1
		if rank < 0 {
			rank = 0
		}
		truth := sorted[rank]
		got := h.Quantile(q)
		if got < truth {
			t.Fatalf("Quantile(%v) = %d underestimates true %d", q, got, truth)
		}
		if truth > 1 && got >= 2*truth {
			t.Fatalf("Quantile(%v) = %d exceeds 2x true %d", q, got, truth)
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty histogram quantile = %d, want 0", got)
	}
	h.Observe(0)
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("all-zero quantile = %d, want 0", got)
	}
	h.Observe(1)
	// Exact for v ≤ 1: bucket 1 has upper bound 1.
	if got := h.Quantile(1.0); got != 1 {
		t.Fatalf("quantile(1.0) = %d, want 1", got)
	}
}

// TestQuantileMatchesSnapshot keeps the live accessor and the snapshot's
// P50/P99 on one code path.
func TestQuantileMatchesSnapshot(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if got := h.Quantile(0.50); got != s.P50 {
		t.Fatalf("Quantile(0.5) = %d, snapshot P50 = %d", got, s.P50)
	}
	if got := h.Quantile(0.99); got != s.P99 {
		t.Fatalf("Quantile(0.99) = %d, snapshot P99 = %d", got, s.P99)
	}
}

// TestQuantileNoAllocs: the watchdog calls Quantile on every evaluation
// tick, so it shares the hot-path allocation contract.
func TestQuantileNoAllocs(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 100; i++ {
		h.Observe(i * 37)
	}
	n := testing.AllocsPerRun(500, func() { h.Quantile(0.99) })
	if n != 0 {
		t.Fatalf("Quantile allocates %v times per run, want 0", n)
	}
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j] < a[j-1]; j-- {
			a[j], a[j-1] = a[j-1], a[j]
		}
	}
}

func TestSnapshotJSON(t *testing.T) {
	var h Histogram
	h.Observe(5)
	out, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"count":1`, `"sum":5`, `"buckets"`} {
		if !contains(string(out), want) {
			t.Fatalf("json %s missing %s", out, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestHotPathNoAllocs is the acceptance gate for instrumenting insert and
// read paths: recording a metric must never allocate.
func TestHotPathNoAllocs(t *testing.T) {
	var c Counter
	var g Gauge
	var h Histogram
	n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		h.Observe(1234)
	})
	if n != 0 {
		t.Fatalf("hot path allocates %v times per run, want 0", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	var c Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}
