// Package metrics implements the allocation-free observability
// primitives threaded through the engine: atomic counters, gauges and
// fixed-bucket histograms. The paper's value proposition is *avoided
// work* — views that recompute only when texp(e) says they must, patches
// that beat full refreshes (Theorem 3), lazy sweeps that batch removal —
// and these primitives are how that avoided work becomes measurable
// (cf. Schmidt & Jensen, "Efficient Management of Short-Lived Data",
// TR-82, which frames expiration-processing overhead and refresh
// frequency as the costs that matter).
//
// Everything here is hot-path safe: Inc/Add/Observe perform a handful of
// atomic operations on preallocated fixed-size state and never allocate,
// so instrumentation points inside insert, read and Advance paths cost
// nanoseconds and zero garbage. Snapshots (taken off the hot path)
// produce plain structs that marshal directly to expvar-style JSON.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use. Copying a Counter after first use is undefined.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for correction, but counters are meant to
// go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an instantaneous atomic value (queue depth, pending events).
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// NumBuckets is the fixed bucket count of a Histogram. Bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i), with
// bucket 0 collecting v ≤ 0. 48 buckets cover every nanosecond latency up
// to ~78 hours and every batch size up to ~2.8e14.
const NumBuckets = 48

// Histogram is a fixed-bucket power-of-two histogram: no configuration,
// no allocation, one atomic add per observation plus count/sum upkeep.
// The zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumBuckets]atomic.Int64
}

// bucketOf maps an observation to its bucket index.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= NumBuckets {
		return NumBuckets - 1
	}
	return b
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations so far.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile estimates the q-quantile (0 < q ≤ 1) of the observations so
// far, returning the upper bound of the bucket holding the rank-⌈q·n⌉
// observation. Because buckets are powers of two, the estimate e bounds
// the true value v by v ≤ e < 2·v for v > 1 (exact for v ≤ 1), and it is
// never an underestimate — the right sidedness for latency SLOs, where a
// threshold compared against Quantile can only flag late, not early.
// Returns 0 when nothing has been observed. Allocation-free: one pass
// over the fixed bucket array.
func (h *Histogram) Quantile(q float64) int64 {
	var counts [NumBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return quantileOf(&counts, total, q)
}

// quantileOf resolves the q-quantile over a bucket count array whose
// occupancy sums to total. Shared by Histogram.Quantile (live) and
// Snapshot (point-in-time copy).
func quantileOf(counts *[NumBuckets]int64, total int64, q float64) int64 {
	if total <= 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(total)))
	if rank <= 0 {
		rank = 1
	}
	seen := int64(0)
	for i, c := range counts {
		seen += c
		if c > 0 && seen >= rank {
			return upperBound(i)
		}
	}
	return 0
}

// Bucket is one non-empty histogram bucket in a snapshot: Count
// observations with value ≤ Le (and greater than the previous bucket's
// Le).
type Bucket struct {
	Le    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistogramSnapshot is a point-in-time copy of a Histogram, shaped for
// JSON export and test assertions. Quantiles are upper-bound
// approximations (the bucket boundary at or above the true quantile —
// within 2× of the true value by construction).
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     int64    `json:"sum"`
	Mean    float64  `json:"mean"`
	P50     int64    `json:"p50"`
	P99     int64    `json:"p99"`
	Max     int64    `json:"max"` // upper bound of the highest occupied bucket
	Buckets []Bucket `json:"buckets,omitempty"`
}

// upperBound returns the inclusive value upper bound of bucket i.
func upperBound(i int) int64 {
	if i == 0 {
		return 0
	}
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1)<<i - 1
}

// Snapshot copies the histogram. Concurrent observations may tear between
// count, sum and buckets; snapshots are monitoring data, not invariants.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	var counts [NumBuckets]int64
	total := int64(0)
	for i := range counts {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	if total > 0 {
		s.P50 = quantileOf(&counts, total, 0.50)
		s.P99 = quantileOf(&counts, total, 0.99)
	}
	for i, c := range counts {
		if c == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{Le: upperBound(i), Count: c})
		s.Max = upperBound(i)
	}
	return s
}
