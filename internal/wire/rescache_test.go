package wire

import (
	"testing"
)

// Two clients materialising the same query: the second is answered from
// the server's validity-interval result cache, and both see identical
// data and validity metadata.
func TestServerResultCacheAcrossClients(t *testing.T) {
	eng, _, addr := startServer(t)
	q := "SELECT deg, COUNT(*) FROM pol GROUP BY deg"

	a, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Materialize(q, false); err != nil {
		t.Fatal(err)
	}
	if a.ServerCacheHits != 0 {
		t.Fatalf("first materialise: server cache hits = %d, want 0", a.ServerCacheHits)
	}

	b, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := b.Materialize(q, false); err != nil {
		t.Fatal(err)
	}
	if b.ServerCacheHits != 1 {
		t.Fatalf("second materialise: server cache hits = %d, want 1", b.ServerCacheHits)
	}
	if av, bv := a.Validity(), b.Validity(); av != bv {
		t.Fatalf("validity diverged: first %v, cached %v", av, bv)
	}
	if bv := b.Validity(); bv.ValidUntil != 10 {
		t.Fatalf("cached validity = %v, want ValidUntil 10", bv)
	}
	ra, err := a.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	if ga, gb := ra.CountAt(0), rb.CountAt(0); ga != gb || ga != 2 {
		t.Fatalf("rows: uncached %d, cached %d, want 2/2", ga, gb)
	}

	m, err := eng.ResultCacheStats()
	if err != nil {
		t.Fatal(err)
	}
	if m.Hits != 1 || m.Misses != 1 {
		t.Fatalf("server cache hits/misses = %d/%d, want 1/1", m.Hits, m.Misses)
	}
}

// A patch-shipping materialisation (WantPatches) bypasses the cache: the
// Theorem 3 helper budget is per-request and cannot be served from a
// shared entry.
func TestWantPatchesBypassesCache(t *testing.T) {
	eng, _, addr := startServer(t)
	q := "SELECT uid FROM pol EXCEPT SELECT uid FROM el"

	for i := 0; i < 2; i++ {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Materialize(q, true); err != nil {
			t.Fatal(err)
		}
		if c.ServerCacheHits != 0 {
			t.Fatalf("patch materialise %d: server cache hits = %d, want 0", i, c.ServerCacheHits)
		}
		c.Close()
	}
	m, err := eng.ResultCacheStats()
	if err != nil {
		t.Fatal(err)
	}
	if m.Hits != 0 {
		t.Fatalf("server cache hits = %d, want 0 (patch requests must not share entries)", m.Hits)
	}
}
