package wire

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync/atomic"
	"time"

	"expdb/internal/interval"
	"expdb/internal/pqueue"
	"expdb/internal/relation"
	"expdb/internal/trace"
	"expdb/internal/tuple"
	"expdb/internal/xtime"
)

// State is the client's connectivity state.
type State int32

const (
	// StateConnected: the last network operation succeeded.
	StateConnected State = iota
	// StateDegraded: the connection is down. Reads keep being answered
	// from the local materialisation while tau < texp — the paper's own
	// correctness guarantee — and the network is retried only when the
	// copy invalidates.
	StateDegraded
)

// String names the state.
func (s State) String() string {
	if s == StateConnected {
		return "connected"
	}
	return "degraded"
}

// Client-side fault-tolerance defaults (overridable via ClientOption).
const (
	// DefaultDialTimeout bounds one TCP dial + handshake.
	DefaultDialTimeout = 5 * time.Second
	// DefaultRequestTimeout bounds one round trip when the caller's
	// context carries no deadline of its own.
	DefaultRequestTimeout = 30 * time.Second
	// DefaultBackoffBase is the first reconnect delay; it doubles per
	// attempt up to DefaultBackoffMax, each delay jittered ±50%.
	DefaultBackoffBase = 50 * time.Millisecond
	// DefaultBackoffMax caps the exponential reconnect delay.
	DefaultBackoffMax = 2 * time.Second
	// DefaultMaxRetries is how many reconnect attempts one Read makes
	// before giving up with ErrDegraded.
	DefaultMaxRetries = 4
)

// ClientOption configures a Client at Dial time.
type ClientOption func(*clientConfig)

type clientConfig struct {
	dialTimeout    time.Duration
	requestTimeout time.Duration
	backoffBase    time.Duration
	backoffMax     time.Duration
	maxRetries     int
	jitterSeed     int64
	dialer         func(addr string) (net.Conn, error)
}

// WithDialTimeout bounds one TCP dial + handshake (default
// DefaultDialTimeout).
func WithDialTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.dialTimeout = d }
}

// WithRequestTimeout bounds one round trip when the caller's context has
// no deadline (default DefaultRequestTimeout; 0 disables the fallback).
func WithRequestTimeout(d time.Duration) ClientOption {
	return func(c *clientConfig) { c.requestTimeout = d }
}

// WithBackoff shapes the reconnect policy: the delay starts at base,
// doubles per attempt, and is capped at max; maxRetries bounds attempts
// per Read (defaults: DefaultBackoffBase/Max/MaxRetries).
func WithBackoff(base, max time.Duration, maxRetries int) ClientOption {
	return func(c *clientConfig) {
		c.backoffBase, c.backoffMax, c.maxRetries = base, max, maxRetries
	}
}

// WithJitterSeed seeds the backoff jitter, making retry timing fully
// deterministic — the fault-injection tests pin it.
func WithJitterSeed(seed int64) ClientOption {
	return func(c *clientConfig) { c.jitterSeed = seed }
}

// WithDialer substitutes the transport dialer — the seam through which
// the faultconn harness injects drops, delays, truncated writes and
// partitions.
func WithDialer(dial func(addr string) (net.Conn, error)) ClientOption {
	return func(c *clientConfig) { c.dialer = dial }
}

// Client is a remote view node: it materialises a query once and then
// answers reads from its local copy, maintained purely by expiration (and
// by replaying shipped Theorem 3 patches). It contacts the server again
// only to re-materialise an invalidated copy.
//
// The client is fault-tolerant: a network error flips it into
// StateDegraded instead of poisoning it. While degraded, Read(tau) keeps
// answering from the local materialisation as long as tau < texp — the
// copy is provably still correct (Theorem 1) — and only when the copy
// invalidates does it reconnect, with capped exponential backoff and
// jitter, rebuilding the gob encoder/decoder from scratch (gob streams
// are stateful; a stale encoder cannot survive a new connection).
type Client struct {
	addr  string
	cfg   clientConfig
	rng   *rand.Rand
	state atomic.Int32

	conn  net.Conn
	cr    *countingReader
	cw    *countingWriter
	dec   *gob.Decoder
	enc   *gob.Encoder
	stats Stats

	query       string
	wantPatches bool
	patchBudget int
	mat         *relation.Relation
	matAt       xtime.Time
	texp        xtime.Time
	patches     *pqueue.Queue[patchItem]
	lastTrace   trace.ID

	// Maintenance counters for experiments.
	Rematerializations int
	LocalReads         int
	PatchesApplied     int
	// ServerCacheHits counts materialisations the server answered from
	// its validity-interval result cache (Response.Cached) — re-fetches
	// that cost a round trip but zero server-side re-evaluation.
	ServerCacheHits int

	// Fault-tolerance counters.
	//
	// DegradedReads counts reads answered from the local copy while the
	// connection was down — the availability the paper's validity
	// guarantee buys during a partition.
	DegradedReads int
	// Reconnects counts successful reconnections (handshake completed,
	// fresh gob codec built).
	Reconnects int
	// ReconnectAttempts counts dial attempts made while reconnecting,
	// successful or not.
	ReconnectAttempts int
	// ReconnectFailures counts Read/round-trip sequences that exhausted
	// every reconnect attempt.
	ReconnectFailures int
}

type patchItem struct {
	tuple tuple.Tuple
	inR   xtime.Time
}

// Dial connects to a wire server and performs the protocol handshake. A
// non-expdb or version-mismatched peer yields ErrProtocol; a server at
// its connection limit yields ErrServerBusy.
func Dial(addr string, opts ...ClientOption) (*Client, error) {
	cfg := clientConfig{
		dialTimeout:    DefaultDialTimeout,
		requestTimeout: DefaultRequestTimeout,
		backoffBase:    DefaultBackoffBase,
		backoffMax:     DefaultBackoffMax,
		maxRetries:     DefaultMaxRetries,
		jitterSeed:     1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.dialer == nil {
		cfg.dialer = func(a string) (net.Conn, error) {
			return net.DialTimeout("tcp", a, cfg.dialTimeout)
		}
	}
	c := &Client{addr: addr, cfg: cfg, rng: rand.New(rand.NewSource(cfg.jitterSeed))}
	if err := c.connect(); err != nil {
		return nil, err
	}
	return c, nil
}

// connect dials, handshakes, and builds a fresh gob encoder/decoder
// pair. Traffic counters accumulate across reconnections.
func (c *Client) connect() error {
	conn, err := c.cfg.dialer(c.addr)
	if err != nil {
		return err
	}
	conn.SetDeadline(time.Now().Add(c.cfg.dialTimeout))
	if err := writeHello(conn, ProtocolVersion, statusOK); err != nil {
		conn.Close()
		return err
	}
	h, err := readHello(conn)
	if err != nil {
		conn.Close()
		if errors.Is(err, ErrProtocol) {
			return err
		}
		return fmt.Errorf("%w: no handshake from peer: %v", ErrProtocol, err)
	}
	switch h.status {
	case statusOK:
	case statusBusy:
		conn.Close()
		return ErrServerBusy
	case statusClosing:
		conn.Close()
		return fmt.Errorf("%w: server shutting down", ErrServerBusy)
	default:
		conn.Close()
		return fmt.Errorf("%w: server speaks version %d, client %d",
			ErrProtocol, h.version, ProtocolVersion)
	}
	conn.SetDeadline(time.Time{})
	prevSent, prevRecv := int64(0), int64(0)
	if c.cr != nil {
		prevSent, prevRecv = c.cw.n, c.cr.n
	}
	c.conn = conn
	c.cr = &countingReader{r: conn, n: prevRecv}
	c.cw = &countingWriter{w: conn, n: prevSent}
	c.dec = gob.NewDecoder(c.cr)
	c.enc = gob.NewEncoder(c.cw)
	c.state.Store(int32(StateConnected))
	return nil
}

// State reports whether the client is connected or riding out a network
// failure on its local copy. Safe to call from any goroutine.
func (c *Client) State() State { return State(c.state.Load()) }

// Close ends the session.
func (c *Client) Close() error {
	if c.conn == nil {
		return nil
	}
	if c.State() == StateConnected {
		c.conn.SetDeadline(time.Now().Add(c.cfg.dialTimeout))
		if err := c.enc.Encode(&Request{Kind: MsgClose}); err == nil {
			c.stats.MessagesSent++
		}
	}
	return c.conn.Close()
}

// Stats returns the client-side traffic counters (cumulative across
// reconnections).
func (c *Client) Stats() Stats {
	c.stats.BytesSent = c.cw.n
	c.stats.BytesReceived = c.cr.n
	return c.stats
}

// degrade records a network failure: the connection is closed and the
// client flips to StateDegraded. The local materialisation is untouched
// — it remains valid until texp regardless of connectivity.
func (c *Client) degrade() {
	c.state.Store(int32(StateDegraded))
	if c.conn != nil {
		c.conn.Close()
	}
}

// reconnect tries to re-establish the connection with capped exponential
// backoff and jitter, honouring ctx between attempts. Each attempt dials
// fresh and rebuilds the gob codec.
func (c *Client) reconnect(ctx context.Context) error {
	delay := c.cfg.backoffBase
	var lastErr error
	for attempt := 0; attempt < c.cfg.maxRetries; attempt++ {
		if attempt > 0 {
			// Jitter the doubled delay to ±50% so a fleet of clients cut
			// off by the same partition does not reconnect in lockstep.
			d := delay/2 + time.Duration(c.rng.Int63n(int64(delay)+1))
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(d):
			}
			if delay *= 2; delay > c.cfg.backoffMax {
				delay = c.cfg.backoffMax
			}
		}
		c.ReconnectAttempts++
		if err := c.connect(); err != nil {
			lastErr = err
			continue
		}
		c.Reconnects++
		return nil
	}
	c.ReconnectFailures++
	if lastErr == nil {
		lastErr = errors.New("no attempts configured")
	}
	return fmt.Errorf("%w (last attempt: %v)", ErrDegraded, lastErr)
}

// withDeadline applies the ctx deadline (or the configured fallback
// request timeout) to the connection for one round trip, and arranges
// for ctx cancellation to interrupt in-flight I/O. The returned stop
// function releases the watcher.
func (c *Client) withDeadline(ctx context.Context) (stop func()) {
	deadline, ok := ctx.Deadline()
	if !ok && c.cfg.requestTimeout > 0 {
		deadline = time.Now().Add(c.cfg.requestTimeout)
		ok = true
	}
	if ok {
		c.conn.SetDeadline(deadline)
	}
	conn := c.conn
	unhook := context.AfterFunc(ctx, func() {
		// Cancellation fires a deadline in the past, failing the I/O now.
		conn.SetDeadline(time.Unix(1, 0))
	})
	return func() {
		unhook()
		conn.SetDeadline(time.Time{})
	}
}

// roundTrip sends one request and decodes its response under the ctx
// deadline. A transport failure degrades the client; a server-reported
// error does not (the connection stays usable).
func (c *Client) roundTrip(ctx context.Context, req *Request) (*Response, error) {
	if c.State() == StateDegraded {
		if err := c.reconnect(ctx); err != nil {
			return nil, err
		}
	}
	stop := c.withDeadline(ctx)
	defer stop()
	if err := c.enc.Encode(req); err != nil {
		c.degrade()
		return nil, err
	}
	c.stats.MessagesSent++
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		c.degrade()
		return nil, err
	}
	c.stats.MessagesReceived++
	if resp.Err != "" {
		return nil, fmt.Errorf("wire: server: %s", resp.Err)
	}
	return &resp, nil
}

// roundTripRetry is roundTrip plus one recovery pass: if the transport
// fails mid-flight, reconnect (with backoff) and retry the request once
// on the fresh connection.
func (c *Client) roundTripRetry(ctx context.Context, req *Request) (*Response, error) {
	resp, err := c.roundTrip(ctx, req)
	if err == nil || c.State() == StateConnected {
		return resp, err // success, or a server-level error: no retry
	}
	if ctx.Err() != nil || errors.Is(err, ErrDegraded) {
		// Cancelled, or roundTrip already burned a full reconnect cycle
		// — don't double the backoff schedule.
		return nil, err
	}
	if rerr := c.reconnect(ctx); rerr != nil {
		return nil, rerr
	}
	return c.roundTrip(ctx, req)
}

// ServerTime fetches the server's current tick.
func (c *Client) ServerTime() (xtime.Time, error) {
	return c.ServerTimeContext(context.Background())
}

// ServerTimeContext is ServerTime under a caller-supplied deadline.
func (c *Client) ServerTimeContext(ctx context.Context) (xtime.Time, error) {
	resp, err := c.roundTripRetry(ctx, &Request{Kind: MsgTime})
	if err != nil {
		return 0, err
	}
	return resp.Now, nil
}

// Materialize fetches the query result and its expiration metadata.
// withPatches additionally ships the Theorem 3 helper for difference
// queries, making the local copy maintainable without recomputation.
func (c *Client) Materialize(query string, withPatches bool) error {
	return c.MaterializeContext(context.Background(), query, withPatches, 0)
}

// MaterializeBudget is Materialize with a bound on the number of patches
// shipped (0 = unlimited) — the §3.4.2 trade-off between up-front bytes
// and future re-fetches. When the budget is exhausted the local copy
// invalidates at the first unshipped critical event and Read re-fetches.
func (c *Client) MaterializeBudget(query string, withPatches bool, budget int) error {
	return c.MaterializeContext(context.Background(), query, withPatches, budget)
}

// MaterializeContext is MaterializeBudget under a caller-supplied
// deadline.
func (c *Client) MaterializeContext(ctx context.Context, query string, withPatches bool, budget int) error {
	c.query, c.wantPatches, c.patchBudget = query, withPatches, budget
	// A fresh trace ID per materialisation: the server tags its events
	// and echoes it, so this fetch is correlatable with server spans.
	tid := trace.NextID()
	resp, err := c.roundTripRetry(ctx, &Request{Kind: MsgMaterialize, Query: query,
		WantPatches: withPatches, PatchBudget: budget, TraceID: uint64(tid)})
	if err != nil {
		return err
	}
	c.lastTrace = trace.ID(resp.TraceID)
	cols := make([]tuple.Column, len(resp.Cols))
	for i, wc := range resp.Cols {
		cols[i] = tuple.Column{Name: wc.Name, Kind: wc.Kind}
	}
	rel := relation.New(tuple.Schema{Cols: cols})
	for _, wr := range resp.Rows {
		t := make(tuple.Tuple, len(wr.Vals))
		for i, wv := range wr.Vals {
			t[i] = wv.FromWire()
		}
		rel.Insert(t, wr.Texp)
	}
	c.mat = rel
	c.matAt = resp.Now
	c.texp = resp.Texp
	if resp.Cached {
		c.ServerCacheHits++
	}
	c.patches = pqueue.New[patchItem](len(resp.Patches))
	for _, wp := range resp.Patches {
		t := make(tuple.Tuple, len(wp.Vals))
		for i, wv := range wp.Vals {
			t[i] = wv.FromWire()
		}
		c.patches.Push(wp.InS, patchItem{tuple: t, inR: wp.InR})
	}
	return nil
}

// Texp returns the expiration time of the local materialisation.
func (c *Client) Texp() xtime.Time { return c.texp }

// Validity returns the local copy's validity window [matAt, texp): the
// span of ticks Read answers with zero round trips. The same interval a
// Result carries locally, so remote and embedded readers reason about
// freshness in one currency.
func (c *Client) Validity() interval.Validity {
	return interval.Validity{At: c.matAt, ValidUntil: c.texp}
}

// LastTraceID returns the trace ID of the most recent materialisation,
// as confirmed by the server — the key for finding this fetch in the
// server's SHOW EVENTS output and /debug/events endpoint.
func (c *Client) LastTraceID() trace.ID { return c.lastTrace }

// Read answers a query at tick tau from the local copy, re-materialising
// over the network only when the copy is invalid.
func (c *Client) Read(tau xtime.Time) (*relation.Relation, error) {
	return c.ReadContext(context.Background(), tau)
}

// ReadContext is Read under a caller-supplied deadline. This is where
// the paper's validity guarantee turns into availability: while
// matAt <= tau < texp the local copy is provably the correct answer
// (Theorem 1), so a network partition degrades reads instead of failing
// them — zero round trips, zero errors. Only a read outside the validity
// window touches the network, reconnecting with capped backoff first if
// the client is degraded; ErrDegraded surfaces only when the copy is
// invalid AND every reconnect attempt failed.
func (c *Client) ReadContext(ctx context.Context, tau xtime.Time) (*relation.Relation, error) {
	if c.mat == nil {
		return nil, fmt.Errorf("wire: client has no materialisation")
	}
	for _, it := range c.patches.PopDue(tau) {
		c.mat.Insert(it.Value.tuple, it.Value.inR)
		c.PatchesApplied++
	}
	if tau >= c.texp || tau < c.matAt {
		if err := c.MaterializeContext(ctx, c.query, c.wantPatches, c.patchBudget); err != nil {
			return nil, err
		}
		c.Rematerializations++
	} else {
		c.LocalReads++
		if c.State() == StateDegraded {
			c.DegradedReads++
		}
	}
	// Zero-copy: the caller gets a shared immutable snapshot of the local
	// materialisation; later patches or rematerialisations detach from it
	// (copy-on-write) instead of disturbing escaped handles.
	return c.mat.SnapshotShared(tau), nil
}
