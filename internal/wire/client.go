package wire

import (
	"encoding/gob"
	"fmt"
	"net"

	"expdb/internal/pqueue"
	"expdb/internal/relation"
	"expdb/internal/trace"
	"expdb/internal/tuple"
	"expdb/internal/xtime"
)

// Client is a remote view node: it materialises a query once and then
// answers reads from its local copy, maintained purely by expiration (and
// by replaying shipped Theorem 3 patches). It contacts the server again
// only to re-materialise an invalidated copy.
type Client struct {
	conn  net.Conn
	cr    *countingReader
	cw    *countingWriter
	dec   *gob.Decoder
	enc   *gob.Encoder
	stats Stats

	query       string
	wantPatches bool
	patchBudget int
	mat         *relation.Relation
	matAt       xtime.Time
	texp        xtime.Time
	patches     *pqueue.Queue[patchItem]
	lastTrace   trace.ID

	// Maintenance counters for experiments.
	Rematerializations int
	LocalReads         int
	PatchesApplied     int
}

type patchItem struct {
	tuple tuple.Tuple
	inR   xtime.Time
}

// Dial connects to a wire server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	c.cr = &countingReader{r: conn}
	c.cw = &countingWriter{w: conn}
	c.dec = gob.NewDecoder(c.cr)
	c.enc = gob.NewEncoder(c.cw)
	return c, nil
}

// Close ends the session.
func (c *Client) Close() error {
	_ = c.send(&Request{Kind: MsgClose})
	return c.conn.Close()
}

// Stats returns the client-side traffic counters.
func (c *Client) Stats() Stats {
	c.stats.BytesSent = c.cw.n
	c.stats.BytesReceived = c.cr.n
	return c.stats
}

func (c *Client) send(req *Request) error {
	if err := c.enc.Encode(req); err != nil {
		return err
	}
	c.stats.MessagesSent++
	return nil
}

func (c *Client) roundTrip(req *Request) (*Response, error) {
	if err := c.send(req); err != nil {
		return nil, err
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, err
	}
	c.stats.MessagesReceived++
	if resp.Err != "" {
		return nil, fmt.Errorf("wire: server: %s", resp.Err)
	}
	return &resp, nil
}

// ServerTime fetches the server's current tick.
func (c *Client) ServerTime() (xtime.Time, error) {
	resp, err := c.roundTrip(&Request{Kind: MsgTime})
	if err != nil {
		return 0, err
	}
	return resp.Now, nil
}

// Materialize fetches the query result and its expiration metadata.
// withPatches additionally ships the Theorem 3 helper for difference
// queries, making the local copy maintainable without recomputation.
func (c *Client) Materialize(query string, withPatches bool) error {
	return c.MaterializeBudget(query, withPatches, 0)
}

// MaterializeBudget is Materialize with a bound on the number of patches
// shipped (0 = unlimited) — the §3.4.2 trade-off between up-front bytes
// and future re-fetches. When the budget is exhausted the local copy
// invalidates at the first unshipped critical event and Read re-fetches.
func (c *Client) MaterializeBudget(query string, withPatches bool, budget int) error {
	c.query, c.wantPatches, c.patchBudget = query, withPatches, budget
	// A fresh trace ID per materialisation: the server tags its events
	// and echoes it, so this fetch is correlatable with server spans.
	tid := trace.NextID()
	resp, err := c.roundTrip(&Request{Kind: MsgMaterialize, Query: query,
		WantPatches: withPatches, PatchBudget: budget, TraceID: uint64(tid)})
	if err != nil {
		return err
	}
	c.lastTrace = trace.ID(resp.TraceID)
	cols := make([]tuple.Column, len(resp.Cols))
	for i, wc := range resp.Cols {
		cols[i] = tuple.Column{Name: wc.Name, Kind: wc.Kind}
	}
	rel := relation.New(tuple.Schema{Cols: cols})
	for _, wr := range resp.Rows {
		t := make(tuple.Tuple, len(wr.Vals))
		for i, wv := range wr.Vals {
			t[i] = wv.FromWire()
		}
		rel.Insert(t, wr.Texp)
	}
	c.mat = rel
	c.matAt = resp.Now
	c.texp = resp.Texp
	c.patches = pqueue.New[patchItem](len(resp.Patches))
	for _, wp := range resp.Patches {
		t := make(tuple.Tuple, len(wp.Vals))
		for i, wv := range wp.Vals {
			t[i] = wv.FromWire()
		}
		c.patches.Push(wp.InS, patchItem{tuple: t, inR: wp.InR})
	}
	return nil
}

// Texp returns the expiration time of the local materialisation.
func (c *Client) Texp() xtime.Time { return c.texp }

// LastTraceID returns the trace ID of the most recent materialisation,
// as confirmed by the server — the key for finding this fetch in the
// server's SHOW EVENTS output and /debug/events endpoint.
func (c *Client) LastTraceID() trace.ID { return c.lastTrace }

// Read answers a query at tick tau from the local copy, re-materialising
// over the network only when the copy is invalid.
func (c *Client) Read(tau xtime.Time) (*relation.Relation, error) {
	if c.mat == nil {
		return nil, fmt.Errorf("wire: client has no materialisation")
	}
	for _, it := range c.patches.PopDue(tau) {
		c.mat.Insert(it.Value.tuple, it.Value.inR)
		c.PatchesApplied++
	}
	if tau >= c.texp || tau < c.matAt {
		if err := c.MaterializeBudget(c.query, c.wantPatches, c.patchBudget); err != nil {
			return nil, err
		}
		c.Rematerializations++
	} else {
		c.LocalReads++
	}
	return c.mat.Snapshot(tau), nil
}
