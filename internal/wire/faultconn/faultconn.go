// Package faultconn is a deterministic fault-injection harness for the
// wire layer: a net.Conn wrapper (and a matching net.Listener wrapper)
// that injects drops, delays, truncated writes and one-way partitions on
// command. Every fault is scripted explicitly — nothing is random — so a
// failure mode reproduces identically on every run.
//
// The wrappers compose with the real TCP stack rather than replacing it:
// tests dial a real loopback server through a Conn and then flip faults
// on the live connection, which exercises exactly the code paths a real
// partition would (blocked reads hitting deadlines, writes vanishing
// into a black hole, accept loops seeing transient errors).
package faultconn

import (
	"errors"
	"net"
	"sync"
	"time"
)

// ErrInjected is the base error returned by scripted hard failures.
var ErrInjected = errors.New("faultconn: injected fault")

// Conn wraps a net.Conn with scriptable faults. The zero-fault wrapper
// is transparent. All methods are safe for concurrent use with the
// connection's own I/O, so a test can flip a partition while the client
// is mid-read.
type Conn struct {
	net.Conn

	mu sync.Mutex
	// dropOutbound black-holes writes: they report success but no bytes
	// reach the peer — one half of a one-way partition, as seen by the
	// writing side.
	dropOutbound bool
	// dropInbound discards everything the peer sends: reads consume the
	// inner stream but never return data, so the reader blocks until its
	// own deadline — the other half of a one-way partition.
	dropInbound bool
	// failReadsAfter/failWritesAfter fail the nth subsequent operation
	// and every one after it (0 = fail immediately; -1 = disabled).
	failReadsAfter  int
	failWritesAfter int
	// readDelay/writeDelay sleep before each operation, modelling a slow
	// link without breaking it.
	readDelay  time.Duration
	writeDelay time.Duration
	// truncateNextWrite cuts the next write short after n bytes and
	// fails it — a connection dying mid-message, leaving the peer a
	// half-decoded gob frame (-1 = disabled).
	truncateNextWrite int
}

// Wrap decorates inner with a fault script. With no faults set it is a
// transparent pass-through.
func Wrap(inner net.Conn) *Conn {
	return &Conn{Conn: inner, failReadsAfter: -1, failWritesAfter: -1, truncateNextWrite: -1}
}

// Dial connects to addr over TCP and wraps the connection.
func Dial(addr string) (*Conn, error) {
	inner, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Wrap(inner), nil
}

// PartitionOutbound starts or heals the outbound half of a partition:
// while on, writes succeed locally but never arrive.
func (c *Conn) PartitionOutbound(on bool) {
	c.mu.Lock()
	c.dropOutbound = on
	c.mu.Unlock()
}

// PartitionInbound starts or heals the inbound half of a partition:
// while on, nothing the peer sends is delivered; reads block until their
// deadline.
func (c *Conn) PartitionInbound(on bool) {
	c.mu.Lock()
	c.dropInbound = on
	c.mu.Unlock()
}

// Partition cuts or heals both directions at once.
func (c *Conn) Partition(on bool) {
	c.mu.Lock()
	c.dropOutbound, c.dropInbound = on, on
	c.mu.Unlock()
}

// FailReadsAfter makes the nth subsequent read (0-indexed) and every
// later read fail with ErrInjected. n < 0 disables.
func (c *Conn) FailReadsAfter(n int) {
	c.mu.Lock()
	c.failReadsAfter = n
	c.mu.Unlock()
}

// FailWritesAfter makes the nth subsequent write and every later write
// fail with ErrInjected. n < 0 disables.
func (c *Conn) FailWritesAfter(n int) {
	c.mu.Lock()
	c.failWritesAfter = n
	c.mu.Unlock()
}

// Delay adds a fixed latency before every read and write.
func (c *Conn) Delay(read, write time.Duration) {
	c.mu.Lock()
	c.readDelay, c.writeDelay = read, write
	c.mu.Unlock()
}

// TruncateNextWrite makes the next write deliver only its first n bytes
// and then fail — the peer is left holding a torn message.
func (c *Conn) TruncateNextWrite(n int) {
	c.mu.Lock()
	c.truncateNextWrite = n
	c.mu.Unlock()
}

// Read implements net.Conn with the scripted read faults.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	delay := c.readDelay
	fail := c.failReadsAfter == 0
	if c.failReadsAfter > 0 {
		c.failReadsAfter--
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return 0, &net.OpError{Op: "read", Net: "faultconn", Err: ErrInjected}
	}
	for {
		n, err := c.Conn.Read(p)
		c.mu.Lock()
		drop := c.dropInbound
		c.mu.Unlock()
		if !drop || err != nil {
			return n, err
		}
		// Inbound partition: swallow the delivered bytes and keep
		// reading, so the caller blocks until its own deadline fails the
		// inner read — exactly how lost packets present to the reader.
	}
}

// Write implements net.Conn with the scripted write faults.
func (c *Conn) Write(p []byte) (int, error) {
	c.mu.Lock()
	delay := c.writeDelay
	fail := c.failWritesAfter == 0
	if c.failWritesAfter > 0 {
		c.failWritesAfter--
	}
	drop := c.dropOutbound
	trunc := c.truncateNextWrite
	c.truncateNextWrite = -1
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail {
		return 0, &net.OpError{Op: "write", Net: "faultconn", Err: ErrInjected}
	}
	if trunc >= 0 {
		if trunc > len(p) {
			trunc = len(p)
		}
		if !drop {
			if n, err := c.Conn.Write(p[:trunc]); err != nil {
				return n, err
			}
		}
		return trunc, &net.OpError{Op: "write", Net: "faultconn", Err: ErrInjected}
	}
	if drop {
		return len(p), nil // vanished into the partition
	}
	return c.Conn.Write(p)
}

// tempError is a net.Error that reports itself temporary, as transient
// accept failures (ECONNABORTED, EMFILE) do.
type tempError struct{}

func (tempError) Error() string   { return "faultconn: injected temporary error" }
func (tempError) Timeout() bool   { return false }
func (tempError) Temporary() bool { return true }

// Listener wraps a net.Listener: it can inject temporary accept errors
// (to exercise accept-loop retry paths) and decorates every accepted
// connection with Wrap, handing each to an optional OnAccept hook so the
// test can keep a handle for later fault flips.
type Listener struct {
	net.Listener

	mu          sync.Mutex
	tempErrs    int
	onAccept    func(*Conn)
	acceptCalls int
}

// NewListener wraps ln. onAccept (optional) observes every accepted,
// fault-wrapped connection.
func NewListener(ln net.Listener, onAccept func(*Conn)) *Listener {
	return &Listener{Listener: ln, onAccept: onAccept}
}

// FailNextAccepts makes the next n Accept calls return a temporary
// net.Error before real accepting resumes.
func (l *Listener) FailNextAccepts(n int) {
	l.mu.Lock()
	l.tempErrs = n
	l.mu.Unlock()
}

// AcceptCalls reports how many times Accept has been invoked (including
// the injected failures) — proof that a retry loop kept trying.
func (l *Listener) AcceptCalls() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.acceptCalls
}

// Accept implements net.Listener with the scripted faults.
func (l *Listener) Accept() (net.Conn, error) {
	l.mu.Lock()
	l.acceptCalls++
	if l.tempErrs > 0 {
		l.tempErrs--
		l.mu.Unlock()
		return nil, tempError{}
	}
	hook := l.onAccept
	l.mu.Unlock()
	inner, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := Wrap(inner)
	if hook != nil {
		hook(fc)
	}
	return fc, nil
}
