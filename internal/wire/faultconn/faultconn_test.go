package faultconn

import (
	"errors"
	"net"
	"testing"
	"time"
)

// pipe returns a wrapped client end and the raw server end of a real
// loopback TCP connection (net.Pipe lacks buffering, which would make
// black-holed writes block instead of vanishing).
func pipe(t *testing.T) (*Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type acc struct {
		conn net.Conn
		err  error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := ln.Accept()
		ch <- acc{c, err}
	}()
	client, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { client.Close(); a.conn.Close() })
	return client, a.conn
}

func TestTransparentPassThrough(t *testing.T) {
	c, s := pipe(t)
	if _, err := c.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	s.SetReadDeadline(time.Now().Add(time.Second))
	if n, err := s.Read(buf); err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("read %q, %v", buf[:n], err)
	}
}

func TestPartitionOutboundBlackholesWrites(t *testing.T) {
	c, s := pipe(t)
	c.PartitionOutbound(true)
	// The write reports success — the bytes just never arrive.
	if n, err := c.Write([]byte("lost")); err != nil || n != 4 {
		t.Fatalf("write = %d, %v", n, err)
	}
	s.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 4)
	if _, err := s.Read(buf); err == nil {
		t.Fatal("black-holed bytes arrived")
	}
	// Healing restores delivery.
	c.PartitionOutbound(false)
	if _, err := c.Write([]byte("back")); err != nil {
		t.Fatal(err)
	}
	s.SetReadDeadline(time.Now().Add(time.Second))
	if n, err := s.Read(buf); err != nil || string(buf[:n]) != "back" {
		t.Fatalf("read after heal: %q, %v", buf[:n], err)
	}
}

func TestPartitionInboundDiscardsDeliveries(t *testing.T) {
	c, s := pipe(t)
	c.PartitionInbound(true)
	if _, err := s.Write([]byte("dropped")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	buf := make([]byte, 16)
	if _, err := c.Read(buf); err == nil {
		t.Fatal("read returned data through an inbound partition")
	}
}

func TestFailWritesAfter(t *testing.T) {
	c, _ := pipe(t)
	c.FailWritesAfter(2)
	for i := 0; i < 2; i++ {
		if _, err := c.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if _, err := c.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("third write err = %v, want ErrInjected", err)
	}
	// And every write after it.
	if _, err := c.Write([]byte("still")); !errors.Is(err, ErrInjected) {
		t.Fatalf("later write err = %v, want ErrInjected", err)
	}
}

func TestFailReadsAfter(t *testing.T) {
	c, s := pipe(t)
	if _, err := s.Write([]byte("ab")); err != nil {
		t.Fatal(err)
	}
	c.FailReadsAfter(1)
	c.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 2)
	if _, err := c.Read(buf); err != nil {
		t.Fatalf("first read: %v", err)
	}
	if _, err := c.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read err = %v, want ErrInjected", err)
	}
}

func TestTruncateNextWrite(t *testing.T) {
	c, s := pipe(t)
	n, err := c.Write([]byte("abcdef"))
	if err != nil || n != 6 {
		t.Fatalf("clean write = %d, %v", n, err)
	}
	c.TruncateNextWrite(2)
	if n, err := c.Write([]byte("ghijkl")); !errors.Is(err, ErrInjected) || n != 2 {
		t.Fatalf("truncated write = %d, %v; want 2, ErrInjected", n, err)
	}
	// Exactly the truncated prefix arrived.
	s.SetReadDeadline(time.Now().Add(time.Second))
	buf := make([]byte, 16)
	total := 0
	for total < 8 {
		m, err := s.Read(buf[total:])
		if err != nil {
			t.Fatal(err)
		}
		total += m
	}
	if got := string(buf[:total]); got != "abcdefgh" {
		t.Fatalf("peer saw %q, want %q", got, "abcdefgh")
	}
	// The fault is one-shot: the next write is clean again.
	if _, err := c.Write([]byte("mn")); err != nil {
		t.Fatalf("write after truncation: %v", err)
	}
}

func TestListenerInjectsTemporaryErrors(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wrapped []*Conn
	ln := NewListener(inner, func(c *Conn) { wrapped = append(wrapped, c) })
	defer ln.Close()
	ln.FailNextAccepts(2)
	for i := 0; i < 2; i++ {
		_, err := ln.Accept()
		var ne net.Error
		if !errors.As(err, &ne) || ne.Timeout() {
			t.Fatalf("accept %d: err = %v, want temporary net.Error", i, err)
		}
		var te interface{ Temporary() bool }
		if !errors.As(err, &te) || !te.Temporary() {
			t.Fatalf("accept %d error is not Temporary: %v", i, err)
		}
	}
	go func() {
		c, err := net.Dial("tcp", inner.Addr().String())
		if err == nil {
			c.Close()
		}
	}()
	conn, err := ln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if len(wrapped) != 1 {
		t.Fatalf("OnAccept saw %d conns, want 1", len(wrapped))
	}
	if ln.AcceptCalls() != 3 {
		t.Fatalf("AcceptCalls = %d, want 3", ln.AcceptCalls())
	}
}
