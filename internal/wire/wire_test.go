package wire

import (
	"strings"
	"testing"
	"time"

	"expdb/internal/engine"
	"expdb/internal/sql"
	"expdb/internal/trace"
	"expdb/internal/tuple"
	"expdb/internal/value"
	"expdb/internal/xtime"
)

// figure1Engine loads the paper's Figure 1 database.
func figure1Engine(t *testing.T) *engine.Engine {
	t.Helper()
	eng := engine.New()
	sess := sql.NewSession(eng, nil)
	script := `
		CREATE TABLE pol (uid INT, deg INT);
		CREATE TABLE el  (uid INT, deg INT);
		INSERT INTO pol VALUES (1, 25) EXPIRES AT 10;
		INSERT INTO pol VALUES (2, 25) EXPIRES AT 15;
		INSERT INTO pol VALUES (3, 35) EXPIRES AT 10;
		INSERT INTO el VALUES (1, 75) EXPIRES AT 5;
		INSERT INTO el VALUES (2, 85) EXPIRES AT 3;
		INSERT INTO el VALUES (4, 90) EXPIRES AT 2;
	`
	if _, err := sess.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	return eng
}

// newTestServer wraps a Figure 1 engine in an (unstarted) server.
func newTestServer(t *testing.T, opts ...ServerOption) (*engine.Engine, *Server) {
	t.Helper()
	eng := figure1Engine(t)
	return eng, NewServer(eng, opts...)
}

// startServerAddr serves the Figure 1 database on a specific address
// (retrying briefly, for restart tests that must rebind a just-freed
// port).
func startServerAddr(t *testing.T, addr string, opts ...ServerOption) (*engine.Engine, *Server, string) {
	t.Helper()
	eng, srv := newTestServer(t, opts...)
	var bound string
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		bound, err = srv.Listen(addr)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return eng, srv, bound
}

// startServer loads the Figure 1 database and serves it on a loopback
// port.
func startServer(t *testing.T) (*engine.Engine, *Server, string) {
	t.Helper()
	return startServerAddr(t, "127.0.0.1:0")
}

func TestMaterializeAndLocalReads(t *testing.T) {
	eng, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Materialize("SELECT pol.uid, pol.deg FROM pol JOIN el ON pol.uid = el.uid", false); err != nil {
		t.Fatal(err)
	}
	if c.Texp() != xtime.Infinity {
		t.Fatalf("texp = %v, want ∞ (monotonic query)", c.Texp())
	}
	// The remote copy tracks server-side expiration with zero traffic.
	for tau := xtime.Time(0); tau <= 20; tau++ {
		if err := eng.Advance(tau); err != nil {
			t.Fatal(err)
		}
		rel, err := c.Read(tau)
		if err != nil {
			t.Fatal(err)
		}
		want := 2
		if tau >= 3 {
			want = 1
		}
		if tau >= 5 {
			want = 0
		}
		if got := rel.CountAt(tau); got != want {
			t.Fatalf("at %v: %d rows, want %d", tau, got, want)
		}
	}
	if c.Rematerializations != 0 {
		t.Fatalf("monotonic view re-fetched %d times", c.Rematerializations)
	}
	if s := c.Stats(); s.MessagesSent != 1 {
		t.Fatalf("traffic: %s (want a single materialise message)", s)
	}
}

func TestRemoteDiffRecomputeOnInvalid(t *testing.T) {
	eng, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Materialize("SELECT uid FROM pol EXCEPT SELECT uid FROM el", false); err != nil {
		t.Fatal(err)
	}
	if c.Texp() != 3 {
		t.Fatalf("texp = %v, want 3", c.Texp())
	}
	for tau := xtime.Time(0); tau <= 16; tau++ {
		if err := eng.Advance(tau); err != nil {
			t.Fatal(err)
		}
		rel, err := c.Read(tau)
		if err != nil {
			t.Fatal(err)
		}
		// Compare with a direct evaluation on the server engine.
		sess := sql.NewSession(eng, nil)
		expr, err := sess.PlanQuery("SELECT uid FROM pol EXCEPT SELECT uid FROM el")
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := expr.Eval(tau)
		if err != nil {
			t.Fatal(err)
		}
		if !fresh.SameTuplesAt(rel, tau) {
			t.Fatalf("remote copy diverges at %v:\nremote:\n%s\nserver:\n%s",
				tau, rel.Render(tau), fresh.Render(tau))
		}
	}
	if c.Rematerializations == 0 {
		t.Fatal("difference view without patches must re-fetch at least once")
	}
}

func TestRemoteDiffWithPatchesNeverRefetches(t *testing.T) {
	eng, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Materialize("SELECT uid FROM pol EXCEPT SELECT uid FROM el", true); err != nil {
		t.Fatal(err)
	}
	if c.Texp() != xtime.Infinity {
		t.Fatalf("texp with patches = %v, want ∞ (Theorem 3)", c.Texp())
	}
	for tau := xtime.Time(0); tau <= 20; tau++ {
		if err := eng.Advance(tau); err != nil {
			t.Fatal(err)
		}
		rel, err := c.Read(tau)
		if err != nil {
			t.Fatal(err)
		}
		for _, uid := range expectedDiff(tau) {
			if !rel.Contains(tuple.Ints(uid), tau) {
				t.Fatalf("at %v: uid %d missing:\n%s", tau, uid, rel.Render(tau))
			}
		}
	}
	if c.Rematerializations != 0 {
		t.Fatalf("patched client re-fetched %d times", c.Rematerializations)
	}
	if c.PatchesApplied != 2 {
		t.Fatalf("patches applied = %d, want 2", c.PatchesApplied)
	}
	if s := c.Stats(); s.MessagesSent != 1 {
		t.Fatalf("traffic: %s", s)
	}
}

// expectedDiff returns the UIDs of π1(Pol) − π1(El) at tau per Figure 3.
func expectedDiff(tau xtime.Time) []int64 {
	var uids []int64
	if tau < 10 {
		uids = append(uids, 3)
	}
	if tau >= 3 && tau < 15 {
		uids = append(uids, 2)
	}
	if tau >= 5 && tau < 10 {
		uids = append(uids, 1)
	}
	return uids
}

func TestServerTime(t *testing.T) {
	eng, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := eng.Advance(7); err != nil {
		t.Fatal(err)
	}
	now, err := c.ServerTime()
	if err != nil {
		t.Fatal(err)
	}
	if now != 7 {
		t.Fatalf("server time = %v, want 7", now)
	}
}

func TestServerErrorPropagates(t *testing.T) {
	_, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Materialize("SELECT nope FROM nada", false)
	if err == nil || !strings.Contains(err.Error(), "server:") {
		t.Fatalf("err = %v, want server error", err)
	}
	// The connection survives an error response.
	if err := c.Materialize("SELECT * FROM pol", false); err != nil {
		t.Fatalf("connection unusable after error: %v", err)
	}
}

func TestMultipleClients(t *testing.T) {
	eng, srv, addr := startServer(t)
	const n = 4
	clients := make([]*Client, n)
	for i := range clients {
		c, err := Dial(addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Materialize("SELECT * FROM pol", false); err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	if err := eng.Advance(12); err != nil {
		t.Fatal(err)
	}
	for i, c := range clients {
		rel, err := c.Read(12)
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
		if rel.CountAt(12) != 1 {
			t.Fatalf("client %d: rows = %d, want 1", i, rel.CountAt(12))
		}
	}
	if srv.Stats().MessagesReceived < n {
		t.Fatalf("server stats: %s", srv.Stats())
	}
}

func TestWireValueRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Null, value.Int(42), value.Int(-7), value.Float(2.5),
		value.String_("hi"), value.Bool(true), value.Bool(false),
	}
	for _, v := range vals {
		got := ToWire(v).FromWire()
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestPatchBudgetOverWire(t *testing.T) {
	eng, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Two critical tuples exist; a budget of 1 ships only the first, so
	// the copy invalidates at the second event (texp_S(⟨1⟩) = 5).
	if err := c.MaterializeBudget("SELECT uid FROM pol EXCEPT SELECT uid FROM el", true, 1); err != nil {
		t.Fatal(err)
	}
	if c.Texp() != 5 {
		t.Fatalf("texp = %v, want 5 (first unshipped critical event)", c.Texp())
	}
	for tau := xtime.Time(0); tau <= 16; tau++ {
		if err := eng.Advance(tau); err != nil {
			t.Fatal(err)
		}
		rel, err := c.Read(tau)
		if err != nil {
			t.Fatal(err)
		}
		for _, uid := range expectedDiff(tau) {
			if !rel.Contains(tuple.Ints(uid), tau) {
				t.Fatalf("at %v: uid %d missing:\n%s", tau, uid, rel.Render(tau))
			}
		}
	}
	if c.Rematerializations == 0 {
		t.Fatal("exhausted wire budget must re-fetch")
	}
}

// TestTraceIDOverWire: the client's trace ID survives the round trip —
// the server tags its materialisation event with it and echoes it in the
// Response, so a fetch is correlatable across both event logs.
func TestTraceIDOverWire(t *testing.T) {
	eng, _, addr := startServer(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Materialize("SELECT uid FROM pol", false); err != nil {
		t.Fatal(err)
	}
	tid := c.LastTraceID()
	if tid == 0 {
		t.Fatal("client recorded no trace ID for the materialisation")
	}
	var found bool
	for _, ev := range eng.Events().Snapshot(0) {
		if ev.Kind == trace.EvWireMaterialize && ev.Trace == tid {
			found = true
			if ev.Name != "SELECT uid FROM pol" {
				t.Errorf("materialise event query = %q", ev.Name)
			}
			if ev.Count != 3 {
				t.Errorf("materialise event rows = %d, want 3", ev.Count)
			}
		}
	}
	if !found {
		t.Fatalf("server event log has no wire-materialize event under trace %s:\n%v",
			tid, eng.Events().Snapshot(0))
	}

	// A second materialisation gets a fresh ID.
	if err := c.Materialize("SELECT uid FROM el", false); err != nil {
		t.Fatal(err)
	}
	if c.LastTraceID() == tid {
		t.Fatal("trace ID reused across materialisations")
	}
}

// TestServerMintsTraceID: a zero TraceID in the request (an old client)
// still yields a non-zero correlation key in the response and events.
func TestServerMintsTraceID(t *testing.T) {
	eng, srv, _ := startServer(t)
	_ = srv
	resp := srvRespond(t, eng, &Request{Kind: MsgMaterialize, Query: "SELECT uid FROM pol"})
	if resp.Err != "" {
		t.Fatal(resp.Err)
	}
	if resp.TraceID == 0 {
		t.Fatal("server did not mint a trace ID for an untraced request")
	}
}

// srvRespond drives Server.respond directly (no socket) for protocol
// edge cases.
func srvRespond(t *testing.T, eng *engine.Engine, req *Request) *Response {
	t.Helper()
	s := NewServer(eng)
	return s.respond(req)
}
