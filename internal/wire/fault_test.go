package wire

// Fault-injection suite: every failure mode the wire layer claims to
// survive is reproduced deterministically through the faultconn harness
// — partitions, truncated writes, server restarts, oversized and
// malformed messages, handler panics, accept-loop hiccups — and each
// test asserts both the behaviour (degraded-but-valid reads, clean
// rejections) and its observability (Client.State, wire metrics, trace
// events).

import (
	"context"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"expdb/internal/trace"
	"expdb/internal/wire/faultconn"
	"expdb/internal/xtime"
)

// fastOpts are client options tuned so failure paths resolve in
// milliseconds while staying on the real backoff code.
func fastOpts(extra ...ClientOption) []ClientOption {
	opts := []ClientOption{
		WithRequestTimeout(200 * time.Millisecond),
		WithDialTimeout(time.Second),
		WithBackoff(time.Millisecond, 4*time.Millisecond, 3),
		WithJitterSeed(7),
	}
	return append(opts, extra...)
}

// partitionDialer routes every dial through faultconn and lets the test
// cut or heal the network for all existing and future connections at
// once — a full one-way (or two-way) partition of this client.
type partitionDialer struct {
	mu          sync.Mutex
	partitioned bool
	conns       []*faultconn.Conn
}

func (p *partitionDialer) dial(addr string) (net.Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.partitioned {
		return nil, errors.New("faultconn: dial lost in partition")
	}
	fc, err := faultconn.Dial(addr)
	if err != nil {
		return nil, err
	}
	p.conns = append(p.conns, fc)
	return fc, nil
}

func (p *partitionDialer) setPartition(on bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.partitioned = on
	for _, fc := range p.conns {
		fc.Partition(on)
	}
}

// TestPartitionDegradedReads is the acceptance scenario: during a
// partition, every Read(tau) with tau < texp succeeds from the local
// copy — zero errors, zero rematerialisations, zero round trips — and
// the first read past texp triggers reconnect-with-backoff, observable
// via Client.State and the retry counters. Healing the partition
// restores full service.
func TestPartitionDegradedReads(t *testing.T) {
	eng, _, addr := startServer(t)
	pd := &partitionDialer{}
	c, err := Dial(addr, fastOpts(WithDialer(pd.dial))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// texp = 3: el's ⟨2⟩ expires at 3 and re-enters the difference.
	if err := c.Materialize("SELECT uid FROM pol EXCEPT SELECT uid FROM el", false); err != nil {
		t.Fatal(err)
	}
	if c.Texp() != 3 {
		t.Fatalf("texp = %v, want 3", c.Texp())
	}

	// The network goes away entirely: in-flight connection black-holed
	// in both directions, new dials fail.
	pd.setPartition(true)

	// Every read inside the validity window is answered locally, with
	// no errors and no traffic — the paper's validity guarantee doing
	// availability work.
	for tau := xtime.Time(0); tau < 3; tau++ {
		rel, err := c.Read(tau)
		if err != nil {
			t.Fatalf("read at %v during partition: %v", tau, err)
		}
		if rel.CountAt(tau) == 0 {
			t.Fatalf("read at %v returned no rows", tau)
		}
	}
	if c.Rematerializations != 0 {
		t.Fatalf("valid-window reads re-fetched %d times during partition", c.Rematerializations)
	}
	if got := c.Stats().MessagesSent; got != 1 {
		t.Fatalf("messages sent = %d, want 1 (the materialisation only)", got)
	}

	// A direct server call proves the server really is unreachable, and
	// flips the client to degraded.
	if _, err := c.ServerTime(); err == nil {
		t.Fatal("ServerTime succeeded through a partition")
	}
	if c.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded", c.State())
	}
	if c.ReconnectAttempts == 0 || c.ReconnectFailures == 0 {
		t.Fatalf("reconnect attempts/failures = %d/%d, want > 0 (backoff ran)",
			c.ReconnectAttempts, c.ReconnectFailures)
	}

	// Degraded reads inside the window still succeed and are counted.
	if _, err := c.Read(2); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if c.DegradedReads != 1 {
		t.Fatalf("DegradedReads = %d, want 1", c.DegradedReads)
	}
	if c.Rematerializations != 0 {
		t.Fatal("degraded read re-fetched")
	}

	// First read past texp: the copy is invalid, so the client must
	// reconnect — and with the partition still up, every backoff attempt
	// fails and the read surfaces ErrDegraded.
	attemptsBefore := c.ReconnectAttempts
	if _, err := c.Read(3); !errors.Is(err, ErrDegraded) {
		t.Fatalf("read past texp during partition: err = %v, want ErrDegraded", err)
	}
	if c.ReconnectAttempts != attemptsBefore+3 {
		t.Fatalf("reconnect attempts = %d, want %d (maxRetries more)",
			c.ReconnectAttempts, attemptsBefore+3)
	}

	// Heal the partition: the same read now reconnects (fresh gob codec)
	// and re-materialises.
	pd.setPartition(false)
	if err := eng.Advance(3); err != nil {
		t.Fatal(err)
	}
	rel, err := c.Read(3)
	if err != nil {
		t.Fatalf("read after heal: %v", err)
	}
	if got := rel.CountAt(3); got != 2 {
		t.Fatalf("rows after heal = %d, want 2 (uids 2, 3)", got)
	}
	if c.State() != StateConnected {
		t.Fatalf("state after heal = %v, want connected", c.State())
	}
	if c.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", c.Reconnects)
	}
	if c.Rematerializations != 1 {
		t.Fatalf("Rematerializations = %d, want 1", c.Rematerializations)
	}
}

// TestClientReconnectAfterServerRestart: a full server restart kills the
// gob stream state; the client must rebuild encoder and decoder on the
// fresh connection or every post-restart message would be garbage.
func TestClientReconnectAfterServerRestart(t *testing.T) {
	eng, srv, addr := startServer(t)
	c, err := Dial(addr, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Materialize("SELECT uid FROM pol EXCEPT SELECT uid FROM el", false); err != nil {
		t.Fatal(err)
	}
	_ = eng

	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Restart on the same address with the same data, clock at 5.
	eng2, _, _ := startServerAddr(t, addr)
	if err := eng2.Advance(5); err != nil {
		t.Fatal(err)
	}

	// Past texp=3 the copy is invalid: the read must ride a reconnect to
	// the new process and succeed.
	rel, err := c.Read(5)
	if err != nil {
		t.Fatalf("read after restart: %v", err)
	}
	// Diff at 5: uid 3 (pol, until 10) and uid 2 (el's ⟨2⟩ gone at 3,
	// pol's until 15) and uid 1 (el's ⟨1⟩ gone at 5, pol's until 10).
	if got := rel.CountAt(5); got != 3 {
		t.Fatalf("rows after restart = %d, want 3", got)
	}
	if c.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", c.Reconnects)
	}
	if c.State() != StateConnected {
		t.Fatalf("state = %v, want connected", c.State())
	}
}

// TestServerShutdownDrainsInflight: Shutdown waits for an in-flight
// request to finish (the drain), and the request completes successfully.
func TestServerShutdownDrainsInflight(t *testing.T) {
	_, srv, addr := startServer(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.setRespondHook(func(*Request) {
		close(entered)
		<-release
	})
	c, err := Dial(addr, WithRequestTimeout(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	matErr := make(chan error, 1)
	go func() { matErr <- c.Materialize("SELECT uid FROM pol", false) }()
	<-entered

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- srv.Shutdown(ctx)
	}()
	select {
	case <-shutdownDone:
		t.Fatal("Shutdown returned while a request was in flight")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-matErr; err != nil {
		t.Fatalf("in-flight request failed during graceful drain: %v", err)
	}
}

// TestServerShutdownHardClosesStragglers: a handler that will not drain
// is hard-closed when the deadline passes, and Shutdown still returns.
func TestServerShutdownHardClosesStragglers(t *testing.T) {
	eng, srv, addr := startServer(t)
	release := make(chan struct{})
	entered := make(chan struct{})
	srv.setRespondHook(func(*Request) {
		close(entered)
		<-release
	})
	c, err := Dial(addr, WithRequestTimeout(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	matErr := make(chan error, 1)
	go func() { matErr <- c.Materialize("SELECT uid FROM pol", false) }()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("Shutdown took %v despite expired drain deadline", took)
	}
	// The straggler was hard-closed and the shutdown event says so.
	var found bool
	for _, ev := range eng.Events().Snapshot(0) {
		if ev.Kind == trace.EvWireShutdown && ev.Count == 1 {
			found = true
		}
	}
	if !found {
		t.Fatal("no wire-shutdown event with straggler count 1")
	}
	close(release)
	if err := <-matErr; err == nil {
		t.Fatal("hard-closed request reported success")
	}
}

// TestOversizedMessageRejected: the decode byte cap refuses a huge
// message below gob, counts it, and drops the connection; the sender
// sees a failed round trip, not a wedged server.
func TestOversizedMessageRejected(t *testing.T) {
	eng, srv := newTestServer(t, WithMaxMessageBytes(4096))
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	_ = eng
	c, err := Dial(bound, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	huge := make([]byte, 64<<10)
	for i := range huge {
		huge[i] = 'x'
	}
	if err := c.Materialize("SELECT uid FROM pol WHERE uid = "+string(huge), false); err == nil {
		t.Fatal("oversized request succeeded")
	}
	if got := srv.WireMetrics().OversizedRejected; got < 1 {
		t.Fatalf("OversizedRejected = %d, want >= 1", got)
	}
	// The server survives: a fresh client works.
	c2, err := Dial(bound, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.ServerTime(); err != nil {
		t.Fatalf("server unusable after oversized rejection: %v", err)
	}
}

// TestHandshakeGarbageServer: dialing something that is not an expdb
// server yields ErrProtocol, not a gob decode error.
func TestHandshakeGarbageServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			conn.Write([]byte("HTTP/1.1 400 Bad Request\r\n"))
			conn.Close()
		}
	}()
	_, err = Dial(ln.Addr().String(), fastOpts()...)
	if !errors.Is(err, ErrProtocol) {
		t.Fatalf("dial of non-expdb server: err = %v, want ErrProtocol", err)
	}
}

// TestHandshakeGarbageClient: a peer that writes garbage at the server
// is rejected at the handshake, counted, and never reaches gob.
func TestHandshakeGarbageClient(t *testing.T) {
	_, srv, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GARBAGE!")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server answered a garbage handshake")
	}
	waitFor(t, func() bool { return srv.WireMetrics().HandshakeFailures == 1 })
}

// TestHandshakeVersionMismatch: a future-versioned client is told the
// server's version in a clean statusVersion reply.
func TestHandshakeVersionMismatch(t *testing.T) {
	_, srv, addr := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeHello(conn, ProtocolVersion+57, statusOK); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	h, err := readHello(conn)
	if err != nil {
		t.Fatal(err)
	}
	if h.status != statusVersion || h.version != ProtocolVersion {
		t.Fatalf("reply = version %d status %d, want version %d status %d",
			h.version, h.status, ProtocolVersion, statusVersion)
	}
	waitFor(t, func() bool { return srv.WireMetrics().HandshakeFailures == 1 })
}

// TestConnLimitRejection: the connection cap turns excess dials away
// with ErrServerBusy at handshake time, and counts them.
func TestConnLimitRejection(t *testing.T) {
	eng, srv := newTestServer(t, WithMaxConns(1))
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	_ = eng
	c1, err := Dial(bound, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if _, err := Dial(bound, fastOpts(WithBackoff(time.Millisecond, time.Millisecond, 1))...); !errors.Is(err, ErrServerBusy) {
		t.Fatalf("dial over the limit: err = %v, want ErrServerBusy", err)
	}
	if got := srv.WireMetrics().ConnsRejected; got != 1 {
		t.Fatalf("ConnsRejected = %d, want 1", got)
	}
	// Freeing the slot re-opens the door.
	c1.Close()
	waitFor(t, func() bool { return srv.WireMetrics().ActiveConns == 0 })
	c2, err := Dial(bound, fastOpts()...)
	if err != nil {
		t.Fatalf("dial after slot freed: %v", err)
	}
	c2.Close()
}

// TestAcceptLoopRetriesTemporaryErrors: transient accept failures are
// retried with backoff instead of killing the accept loop.
func TestAcceptLoopRetriesTemporaryErrors(t *testing.T) {
	eng, srv := newTestServer(t)
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := faultconn.NewListener(inner, nil)
	fl.FailNextAccepts(3)
	srv.Serve(fl)
	t.Cleanup(func() { srv.Close() })
	_ = eng
	c, err := Dial(inner.Addr().String(), fastOpts()...)
	if err != nil {
		t.Fatalf("dial after transient accept errors: %v", err)
	}
	defer c.Close()
	if _, err := c.ServerTime(); err != nil {
		t.Fatal(err)
	}
	if got := srv.WireMetrics().AcceptRetries; got != 3 {
		t.Fatalf("AcceptRetries = %d, want 3", got)
	}
	if calls := fl.AcceptCalls(); calls < 4 {
		t.Fatalf("accept calls = %d, want >= 4", calls)
	}
}

// TestIdleTimeoutClosesConnection: a silent peer is disconnected at the
// idle deadline; the well-behaved client then reconnects transparently.
func TestIdleTimeoutClosesConnection(t *testing.T) {
	eng, srv := newTestServer(t, WithIdleTimeout(50*time.Millisecond))
	bound, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	_ = eng
	c, err := Dial(bound, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitFor(t, func() bool { return srv.WireMetrics().Timeouts >= 1 })
	// The next round trip rides a reconnect and succeeds.
	if _, err := c.ServerTime(); err != nil {
		t.Fatalf("round trip after idle disconnect: %v", err)
	}
	if c.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", c.Reconnects)
	}
}

// TestPanicRecovery: a handler panic is contained to its connection —
// counted, logged as an event, and the accept loop keeps serving.
func TestPanicRecovery(t *testing.T) {
	eng, srv, addr := startServer(t)
	srv.setRespondHook(func(req *Request) {
		if req.Kind == MsgMaterialize {
			panic("injected handler panic")
		}
	})
	c, err := Dial(addr, fastOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Materialize("SELECT uid FROM pol", false); err == nil {
		t.Fatal("request served by a panicking handler")
	}
	waitFor(t, func() bool { return srv.WireMetrics().PanicsRecovered >= 1 })
	var found bool
	for _, ev := range eng.Events().Snapshot(0) {
		if ev.Kind == trace.EvWirePanic {
			found = true
		}
	}
	if !found {
		t.Fatal("no wire-panic event emitted")
	}
	// One bad request must not kill the accept loop.
	srv.setRespondHook(nil)
	c2, err := Dial(addr, fastOpts()...)
	if err != nil {
		t.Fatalf("server dead after handler panic: %v", err)
	}
	defer c2.Close()
	if err := c2.Materialize("SELECT uid FROM pol", false); err != nil {
		t.Fatalf("server unusable after handler panic: %v", err)
	}
}

// TestTruncatedWriteReconnect: a connection dying mid-message leaves the
// peer a torn gob frame; the client recovers by reconnecting with a
// fresh codec and retrying.
func TestTruncatedWriteReconnect(t *testing.T) {
	eng, _, addr := startServer(t)
	if err := eng.Advance(4); err != nil {
		t.Fatal(err)
	}
	pd := &partitionDialer{}
	c, err := Dial(addr, fastOpts(WithDialer(pd.dial))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	pd.mu.Lock()
	fc := pd.conns[len(pd.conns)-1]
	pd.mu.Unlock()
	fc.TruncateNextWrite(3)
	now, err := c.ServerTime()
	if err != nil {
		t.Fatalf("round trip after truncated write: %v", err)
	}
	if now != 4 {
		t.Fatalf("server time = %v, want 4", now)
	}
	if c.Reconnects != 1 {
		t.Fatalf("Reconnects = %d, want 1", c.Reconnects)
	}
}

// TestContextCancelInterruptsRoundTrip: a cancelled context fails the
// in-flight round trip promptly instead of waiting out the timeout.
func TestContextCancelInterruptsRoundTrip(t *testing.T) {
	_, srv, addr := startServer(t)
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	srv.setRespondHook(func(*Request) { <-release })
	c, err := Dial(addr, WithRequestTimeout(time.Minute), WithBackoff(time.Millisecond, time.Millisecond, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = c.ServerTimeContext(ctx)
	if err == nil {
		t.Fatal("cancelled round trip succeeded")
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Fatalf("cancellation took %v to interrupt the round trip", took)
	}
	if c.State() != StateDegraded {
		t.Fatalf("state = %v, want degraded after interrupted round trip", c.State())
	}
}

// TestFaultStressReconnectCycles drives many partition/heal cycles in a
// row — the timing-dependent paths (backoff, deadline, degrade,
// reconnect) under -race. Gated behind EXPDB_FAULT_STRESS so the
// everyday suite stays fast; CI sets it.
func TestFaultStressReconnectCycles(t *testing.T) {
	if os.Getenv("EXPDB_FAULT_STRESS") == "" {
		t.Skip("set EXPDB_FAULT_STRESS=1 to run")
	}
	eng, _, addr := startServer(t)
	pd := &partitionDialer{}
	c, err := Dial(addr, fastOpts(WithDialer(pd.dial), WithRequestTimeout(50*time.Millisecond))...)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Materialize("SELECT uid FROM pol", false); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 25; cycle++ {
		pd.setPartition(true)
		if _, err := c.ServerTime(); err == nil {
			t.Fatalf("cycle %d: round trip crossed a partition", cycle)
		}
		if c.State() != StateDegraded {
			t.Fatalf("cycle %d: state = %v, want degraded", cycle, c.State())
		}
		if _, err := c.Read(0); err != nil {
			t.Fatalf("cycle %d: degraded read failed: %v", cycle, err)
		}
		pd.setPartition(false)
		if _, err := c.ServerTime(); err != nil {
			t.Fatalf("cycle %d: round trip after heal: %v", cycle, err)
		}
		if c.State() != StateConnected {
			t.Fatalf("cycle %d: state = %v, want connected", cycle, c.State())
		}
	}
	if c.Reconnects < 25 {
		t.Fatalf("Reconnects = %d, want >= 25", c.Reconnects)
	}
	_ = eng
}

// waitFor polls cond for up to 2 seconds — used where a server-side
// counter is updated by a handler goroutine after the client already
// observed the network effect.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 2s")
}
