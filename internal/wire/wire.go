// Package wire implements the loosely-coupled deployment the paper's
// introduction motivates: a server hosts the base relations; remote nodes
// materialise query results once and then maintain them *independently*,
// using only the expiration times carried by the result tuples. The
// network is touched again only when a materialisation invalidates —
// or never, when the Theorem 3 patch queue was shipped along with a
// difference query.
//
// The protocol is a length-free gob stream over TCP. Traffic accounting
// (messages and bytes in both directions) feeds experiment E6: the cost of
// recompute-on-invalid versus patch-ahead versus the TTL-only baseline
// that re-fetches on every read.
package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"expdb/internal/value"
	"expdb/internal/xtime"
)

// Sentinel errors for the fault-tolerant wire layer. Both endpoints wrap
// rather than replace these, so errors.Is works on anything the client
// or server returns.
var (
	// ErrProtocol: the peer is not an expdb wire endpoint, or speaks an
	// incompatible protocol version (detected at handshake, before gob
	// ever touches the stream).
	ErrProtocol = errors.New("wire: protocol mismatch")
	// ErrServerBusy: the server is at its connection limit and cleanly
	// turned the dial away.
	ErrServerBusy = errors.New("wire: server at connection limit")
	// ErrTooLarge: a single message exceeded the max-decode byte cap.
	ErrTooLarge = errors.New("wire: message exceeds size cap")
	// ErrDegraded: the local copy is invalid and every reconnect attempt
	// failed — the one condition under which a degraded client's Read
	// gives up.
	ErrDegraded = errors.New("wire: degraded: local copy invalid and server unreachable")
)

// The handshake is a fixed 6-byte frame exchanged at dial time, before
// gob touches the stream: 4 magic bytes, a version byte, and a status
// byte. A mismatched or non-expdb peer therefore fails with ErrProtocol
// instead of a garbage gob decode error, and a server at its connection
// limit can reject cleanly (statusBusy) without entering the request
// loop.
const (
	// ProtocolVersion is bumped on incompatible message-schema changes.
	ProtocolVersion = 1

	statusOK      = 0 // proceed to the request loop
	statusBusy    = 1 // connection limit reached; dial again later
	statusVersion = 2 // version mismatch; peer names its own in the hello
	statusClosing = 3 // server is shutting down
)

var protocolMagic = [4]byte{'E', 'X', 'P', 'W'}

// hello is one handshake frame.
type hello struct {
	magic   [4]byte
	version byte
	status  byte
}

func writeHello(w io.Writer, version, status byte) error {
	frame := [6]byte{protocolMagic[0], protocolMagic[1], protocolMagic[2], protocolMagic[3], version, status}
	_, err := w.Write(frame[:])
	return err
}

func readHello(r io.Reader) (hello, error) {
	var frame [6]byte
	if _, err := io.ReadFull(r, frame[:]); err != nil {
		return hello{}, err
	}
	h := hello{version: frame[4], status: frame[5]}
	copy(h.magic[:], frame[:4])
	if h.magic != protocolMagic {
		return h, fmt.Errorf("%w: bad magic %q", ErrProtocol, frame[:4])
	}
	return h, nil
}

// cappedReader enforces the max-decode byte cap: once more than limit
// bytes flow through between Reset calls it fails the stream, so a
// hostile or corrupt peer cannot make gob allocate unboundedly. The
// endpoint resets it before each Decode, bounding every message
// individually (gob reads exactly one length-delimited message per
// Decode, so the window aligns with message boundaries).
type cappedReader struct {
	r       io.Reader
	limit   int64
	n       int64
	tripped bool
}

func (c *cappedReader) Reset() { c.n = 0 }

// Tripped reports whether the cap has been exceeded since creation —
// checked on decode errors because gob may wrap the reader's error.
func (c *cappedReader) Tripped() bool { return c.tripped }

func (c *cappedReader) Read(p []byte) (int, error) {
	if c.limit > 0 && c.n >= c.limit {
		c.tripped = true
		return 0, ErrTooLarge
	}
	if c.limit > 0 && int64(len(p)) > c.limit-c.n {
		p = p[:c.limit-c.n]
	}
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

// MsgKind tags protocol messages.
type MsgKind uint8

const (
	// MsgMaterialize asks the server to evaluate a query and return the
	// materialisation with its expiration metadata.
	MsgMaterialize MsgKind = iota
	// MsgTime asks for the server's current tick (loosely-coupled nodes
	// re-synchronise coarsely, not per-operation).
	MsgTime
	// MsgClose ends the session.
	MsgClose
)

// Request is a client → server message.
type Request struct {
	Kind  MsgKind
	Query string // MsgMaterialize: a SELECT statement
	// WantPatches asks for the Theorem 3 helper relation when the query's
	// root is a difference, enabling recomputation-free maintenance.
	WantPatches bool
	// PatchBudget bounds the number of patches shipped (0 = unlimited):
	// the §3.4.2 trade-off between up-front transfer and future
	// communication. With a bounded queue the reported Texp shrinks to
	// the first critical event that did not fit.
	PatchBudget int
	// TraceID correlates this request with the server's lifecycle events
	// and spans; 0 lets the server mint one (echoed in the Response).
	TraceID uint64
}

// WireValue is the transport form of a scalar value.
type WireValue struct {
	Kind value.Kind
	I    int64
	F    float64
	S    string
}

// ToWire converts a value for transport.
func ToWire(v value.Value) WireValue {
	switch v.Kind() {
	case value.KindInt:
		return WireValue{Kind: value.KindInt, I: v.AsInt()}
	case value.KindFloat:
		return WireValue{Kind: value.KindFloat, F: v.AsFloat()}
	case value.KindString:
		return WireValue{Kind: value.KindString, S: v.AsString()}
	case value.KindBool:
		b := int64(0)
		if v.AsBool() {
			b = 1
		}
		return WireValue{Kind: value.KindBool, I: b}
	default:
		return WireValue{Kind: value.KindNull}
	}
}

// FromWire converts a transported value back.
func (w WireValue) FromWire() value.Value {
	switch w.Kind {
	case value.KindInt:
		return value.Int(w.I)
	case value.KindFloat:
		return value.Float(w.F)
	case value.KindString:
		return value.String_(w.S)
	case value.KindBool:
		return value.Bool(w.I != 0)
	default:
		return value.Null
	}
}

// WireRow is one result tuple with its expiration time.
type WireRow struct {
	Vals []WireValue
	Texp xtime.Time
}

// WireColumn describes one schema column.
type WireColumn struct {
	Name string
	Kind value.Kind
}

// WirePatch is one Theorem 3 patch: insert Vals with expiration InR once
// the server tick reaches InS.
type WirePatch struct {
	Vals []WireValue
	InS  xtime.Time
	InR  xtime.Time
}

// Response is a server → client message.
type Response struct {
	Err     string // non-empty on failure
	Now     xtime.Time
	Cols    []WireColumn
	Rows    []WireRow
	Texp    xtime.Time // texp(e) of the materialisation
	Patches []WirePatch
	// Cached reports the server answered from its validity-interval
	// result cache with zero re-evaluation. [Now, Texp) is the validity
	// window either way, so the client's local-read behaviour is
	// identical; the flag exists for observability. (Gob tolerates the
	// field's absence, so mixed-version endpoints interoperate: a missing
	// flag decodes as false.)
	Cached bool
	// TraceID is the trace ID the server tagged its work with — the
	// request's, or a freshly minted one — so client-side latency can be
	// correlated with the server's event log and spans.
	TraceID uint64
}

func init() {
	gob.Register(Request{})
	gob.Register(Response{})
}

// Stats counts protocol traffic for one endpoint.
type Stats struct {
	MessagesSent     int
	MessagesReceived int
	BytesSent        int64
	BytesReceived    int64
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("msgs out/in %d/%d, bytes out/in %d/%d",
		s.MessagesSent, s.MessagesReceived, s.BytesSent, s.BytesReceived)
}
