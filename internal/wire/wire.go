// Package wire implements the loosely-coupled deployment the paper's
// introduction motivates: a server hosts the base relations; remote nodes
// materialise query results once and then maintain them *independently*,
// using only the expiration times carried by the result tuples. The
// network is touched again only when a materialisation invalidates —
// or never, when the Theorem 3 patch queue was shipped along with a
// difference query.
//
// The protocol is a length-free gob stream over TCP. Traffic accounting
// (messages and bytes in both directions) feeds experiment E6: the cost of
// recompute-on-invalid versus patch-ahead versus the TTL-only baseline
// that re-fetches on every read.
package wire

import (
	"encoding/gob"
	"fmt"

	"expdb/internal/value"
	"expdb/internal/xtime"
)

// MsgKind tags protocol messages.
type MsgKind uint8

const (
	// MsgMaterialize asks the server to evaluate a query and return the
	// materialisation with its expiration metadata.
	MsgMaterialize MsgKind = iota
	// MsgTime asks for the server's current tick (loosely-coupled nodes
	// re-synchronise coarsely, not per-operation).
	MsgTime
	// MsgClose ends the session.
	MsgClose
)

// Request is a client → server message.
type Request struct {
	Kind  MsgKind
	Query string // MsgMaterialize: a SELECT statement
	// WantPatches asks for the Theorem 3 helper relation when the query's
	// root is a difference, enabling recomputation-free maintenance.
	WantPatches bool
	// PatchBudget bounds the number of patches shipped (0 = unlimited):
	// the §3.4.2 trade-off between up-front transfer and future
	// communication. With a bounded queue the reported Texp shrinks to
	// the first critical event that did not fit.
	PatchBudget int
	// TraceID correlates this request with the server's lifecycle events
	// and spans; 0 lets the server mint one (echoed in the Response).
	TraceID uint64
}

// WireValue is the transport form of a scalar value.
type WireValue struct {
	Kind value.Kind
	I    int64
	F    float64
	S    string
}

// ToWire converts a value for transport.
func ToWire(v value.Value) WireValue {
	switch v.Kind() {
	case value.KindInt:
		return WireValue{Kind: value.KindInt, I: v.AsInt()}
	case value.KindFloat:
		return WireValue{Kind: value.KindFloat, F: v.AsFloat()}
	case value.KindString:
		return WireValue{Kind: value.KindString, S: v.AsString()}
	case value.KindBool:
		b := int64(0)
		if v.AsBool() {
			b = 1
		}
		return WireValue{Kind: value.KindBool, I: b}
	default:
		return WireValue{Kind: value.KindNull}
	}
}

// FromWire converts a transported value back.
func (w WireValue) FromWire() value.Value {
	switch w.Kind {
	case value.KindInt:
		return value.Int(w.I)
	case value.KindFloat:
		return value.Float(w.F)
	case value.KindString:
		return value.String_(w.S)
	case value.KindBool:
		return value.Bool(w.I != 0)
	default:
		return value.Null
	}
}

// WireRow is one result tuple with its expiration time.
type WireRow struct {
	Vals []WireValue
	Texp xtime.Time
}

// WireColumn describes one schema column.
type WireColumn struct {
	Name string
	Kind value.Kind
}

// WirePatch is one Theorem 3 patch: insert Vals with expiration InR once
// the server tick reaches InS.
type WirePatch struct {
	Vals []WireValue
	InS  xtime.Time
	InR  xtime.Time
}

// Response is a server → client message.
type Response struct {
	Err     string // non-empty on failure
	Now     xtime.Time
	Cols    []WireColumn
	Rows    []WireRow
	Texp    xtime.Time // texp(e) of the materialisation
	Patches []WirePatch
	// TraceID is the trace ID the server tagged its work with — the
	// request's, or a freshly minted one — so client-side latency can be
	// correlated with the server's event log and spans.
	TraceID uint64
}

func init() {
	gob.Register(Request{})
	gob.Register(Response{})
}

// Stats counts protocol traffic for one endpoint.
type Stats struct {
	MessagesSent     int
	MessagesReceived int
	BytesSent        int64
	BytesReceived    int64
}

// String renders the counters compactly.
func (s Stats) String() string {
	return fmt.Sprintf("msgs out/in %d/%d, bytes out/in %d/%d",
		s.MessagesSent, s.MessagesReceived, s.BytesSent, s.BytesReceived)
}
