package wire

import "expdb/internal/metrics"

// Metrics is the wire server's fault-tolerance instrumentation: every
// counter here measures a failure mode the server survived rather than
// died from. They are atomic (internal/metrics) so connection handlers
// update them without touching the server mutex.
type Metrics struct {
	// ConnsAccepted counts connections that completed the handshake and
	// entered the request loop.
	ConnsAccepted metrics.Counter
	// ConnsRejected counts connections turned away: over the connection
	// limit, failed handshake, or accepted while the server was closing.
	ConnsRejected metrics.Counter
	// HandshakeFailures counts peers that spoke the wrong protocol or
	// version (a subset of ConnsRejected).
	HandshakeFailures metrics.Counter
	// Timeouts counts connections closed because a read or write hit the
	// idle deadline.
	Timeouts metrics.Counter
	// PanicsRecovered counts handler panics caught by the per-connection
	// recover — each one would previously have killed the process.
	PanicsRecovered metrics.Counter
	// OversizedRejected counts messages refused by the max-decode byte
	// cap before gob could allocate for them.
	OversizedRejected metrics.Counter
	// AcceptRetries counts temporary Accept errors the accept loop rode
	// out with backoff instead of exiting.
	AcceptRetries metrics.Counter
	// RequestsServed counts successfully answered requests.
	RequestsServed metrics.Counter
	// ActiveConns is the number of connections currently in their
	// request loop.
	ActiveConns metrics.Gauge
}

// MetricsSnapshot is a point-in-time copy of the wire server's
// fault-tolerance counters, shaped for JSON export alongside the engine
// snapshot.
type MetricsSnapshot struct {
	ConnsAccepted     int64 `json:"conns_accepted"`
	ConnsRejected     int64 `json:"conns_rejected"`
	HandshakeFailures int64 `json:"handshake_failures"`
	Timeouts          int64 `json:"timeouts"`
	PanicsRecovered   int64 `json:"panics_recovered"`
	OversizedRejected int64 `json:"oversized_rejected"`
	AcceptRetries     int64 `json:"accept_retries"`
	RequestsServed    int64 `json:"requests_served"`
	ActiveConns       int64 `json:"active_conns"`
}

// MetricsRef exposes the live counters so an embedder can register them
// as monitoring history series (load functions must read the counters in
// place, not a snapshot).
func (s *Server) MetricsRef() *Metrics { return &s.wm }

// Snapshot copies the counters.
func (m *Metrics) Snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		ConnsAccepted:     m.ConnsAccepted.Load(),
		ConnsRejected:     m.ConnsRejected.Load(),
		HandshakeFailures: m.HandshakeFailures.Load(),
		Timeouts:          m.Timeouts.Load(),
		PanicsRecovered:   m.PanicsRecovered.Load(),
		OversizedRejected: m.OversizedRejected.Load(),
		AcceptRetries:     m.AcceptRetries.Load(),
		RequestsServed:    m.RequestsServed.Load(),
		ActiveConns:       m.ActiveConns.Load(),
	}
}
