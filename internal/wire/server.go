package wire

import (
	"context"
	"encoding/gob"
	"errors"
	"io"
	"log"
	"net"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"expdb/internal/algebra"
	"expdb/internal/engine"
	"expdb/internal/sql"
	"expdb/internal/trace"
	"expdb/internal/xtime"
)

// Fault-tolerance defaults. All are configurable per server via the
// With* options; zero values in the config mean "use the default".
const (
	// DefaultIdleTimeout is how long a connection may sit idle (no
	// complete request read, no response written) before the server
	// closes it.
	DefaultIdleTimeout = 30 * time.Second
	// DefaultMaxMessageBytes caps a single decoded message, bounding
	// what a hostile or corrupt peer can make gob allocate.
	DefaultMaxMessageBytes = 8 << 20
	// DefaultMaxConns caps concurrent connections; dials beyond it are
	// rejected cleanly at handshake time with ErrServerBusy.
	DefaultMaxConns = 256
	// DefaultDrainTimeout bounds how long Close waits for in-flight
	// connections before hard-closing the stragglers.
	DefaultDrainTimeout = 5 * time.Second
)

// ServerOption configures a Server.
type ServerOption func(*serverConfig)

type serverConfig struct {
	idleTimeout time.Duration
	maxMsgBytes int64
	maxConns    int
	drain       time.Duration
}

// WithIdleTimeout sets the per-connection read/write deadline: a peer
// that neither completes a request nor accepts a response within d is
// disconnected (default DefaultIdleTimeout).
func WithIdleTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.idleTimeout = d }
}

// WithMaxMessageBytes caps the size of a single decoded message
// (default DefaultMaxMessageBytes). The cap is enforced below gob, so an
// oversized message fails with ErrTooLarge before it is allocated.
func WithMaxMessageBytes(n int64) ServerOption {
	return func(c *serverConfig) { c.maxMsgBytes = n }
}

// WithMaxConns caps concurrent connections (default DefaultMaxConns).
// Excess dials complete the handshake, receive statusBusy, and are
// closed — the client surfaces ErrServerBusy.
func WithMaxConns(n int) ServerOption {
	return func(c *serverConfig) { c.maxConns = n }
}

// WithDrainTimeout bounds how long Close/Shutdown waits for in-flight
// connections before hard-closing them (default DefaultDrainTimeout).
func WithDrainTimeout(d time.Duration) ServerOption {
	return func(c *serverConfig) { c.drain = d }
}

// Server exposes an engine's relations to remote view nodes, and is
// built to survive real networks: per-connection deadlines, a decode
// byte cap, panic recovery in handlers, a connection limit with clean
// rejection, a temporary-error-tolerant accept loop, and graceful
// drain-then-hard-close shutdown. Every failure mode it rides out is
// counted in WireMetrics and emitted as a trace lifecycle event.
type Server struct {
	eng  *engine.Engine
	sqlm *sql.Metrics // shared by every per-request planning session
	ln   net.Listener
	cfg  serverConfig
	wm   Metrics

	mu      sync.Mutex
	stats   Stats
	closed  bool
	conns   map[net.Conn]*connState
	pending sync.WaitGroup

	// testRespondHook, when set, runs before each respond — fault tests
	// use it to hold a request in flight or to panic inside the handler.
	testRespondHook func(*Request)
}

// setRespondHook installs (or clears) the test hook under the mutex.
func (s *Server) setRespondHook(fn func(*Request)) {
	s.mu.Lock()
	s.testRespondHook = fn
	s.mu.Unlock()
}

// NewServer wraps eng; call Listen (or Serve with your own listener) to
// start.
func NewServer(eng *engine.Engine, opts ...ServerOption) *Server {
	cfg := serverConfig{
		idleTimeout: DefaultIdleTimeout,
		maxMsgBytes: DefaultMaxMessageBytes,
		maxConns:    DefaultMaxConns,
		drain:       DefaultDrainTimeout,
	}
	for _, o := range opts {
		o(&cfg)
	}
	return &Server{
		eng:   eng,
		sqlm:  &sql.Metrics{},
		cfg:   cfg,
		conns: make(map[net.Conn]*connState),
	}
}

// connState marks whether a connection is mid-request. Shutdown closes
// idle connections (blocked in Decode, between requests) immediately and
// drains only the in-flight ones.
type connState struct {
	inFlight atomic.Bool
}

// SQLMetrics returns the server's aggregated SQL planning metrics. The
// same sink is handed to every per-request session, so remote
// materialisations show up alongside local statements when the caller
// merges snapshots.
func (s *Server) SQLMetrics() *sql.Metrics { return s.sqlm }

// WireMetrics returns the fault-tolerance counters: connections
// accepted/rejected, timeouts, panics recovered, oversized messages
// refused, accept retries.
func (s *Server) WireMetrics() MetricsSnapshot { return s.wm.Snapshot() }

// Listen starts accepting on addr (e.g. "127.0.0.1:0") in a background
// goroutine and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.Serve(ln)
	return ln.Addr().String(), nil
}

// Serve starts accepting on a caller-supplied listener in a background
// goroutine — the seam fault tests use to inject accept errors.
func (s *Server) Serve(ln net.Listener) {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	go s.acceptLoop(ln)
}

// Close gracefully shuts the server down with the configured drain
// timeout: stop accepting, wait for in-flight connections, hard-close
// stragglers.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.drain)
	defer cancel()
	return s.Shutdown(ctx)
}

// Shutdown stops accepting, drains in-flight connections until ctx
// expires, then hard-closes the stragglers so it always returns promptly
// after the deadline. Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	var err error
	if ln != nil && !already {
		err = ln.Close()
	}

	// Idle connections (no request mid-flight) are closed immediately —
	// they have nothing to drain; their handlers exit on the failed read.
	s.mu.Lock()
	for c, st := range s.conns {
		if !st.inFlight.Load() {
			c.Close()
		}
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.pending.Wait()
		close(done)
	}()
	stragglers := 0
	select {
	case <-done:
	case <-ctx.Done():
		// Drain deadline passed: hard-close whatever is still open. The
		// handlers' next read/write fails and they exit; a handler stuck
		// in pure computation cannot be killed, so wait only a short
		// grace before returning rather than hanging Shutdown on it.
		s.mu.Lock()
		stragglers = len(s.conns)
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		select {
		case <-done:
		case <-time.After(500 * time.Millisecond):
		}
	}
	if !already {
		s.eng.Events().Emit(trace.Event{
			Kind: trace.EvWireShutdown, Tick: s.eng.Now(), Count: int64(stragglers),
		})
	}
	return err
}

// Stats returns the server-side traffic counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// acceptLoop accepts until the listener closes, retrying temporary
// errors with capped backoff instead of silently exiting, and rejecting
// connections that race in during Close.
func (s *Server) acceptLoop(ln net.Listener) {
	backoff := 5 * time.Millisecond
	const maxBackoff = 500 * time.Millisecond
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() || isTemporary(err) {
				s.wm.AcceptRetries.Inc()
				time.Sleep(backoff)
				if backoff *= 2; backoff > maxBackoff {
					backoff = maxBackoff
				}
				continue
			}
			log.Printf("wire: accept: %v", err)
			return
		}
		backoff = 5 * time.Millisecond
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			// Accepted during Close: reject instead of handling.
			s.rejectConn(conn, statusClosing)
			continue
		}
		atLimit := len(s.conns) >= s.cfg.maxConns
		var st *connState
		if !atLimit {
			st = &connState{}
			s.conns[conn] = st
			s.pending.Add(1)
		}
		s.mu.Unlock()
		if atLimit {
			s.rejectConn(conn, statusBusy)
			continue
		}
		go func() {
			defer s.pending.Done()
			defer func() {
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			if err := s.handle(conn, st); err != nil && !errors.Is(err, io.EOF) &&
				!errors.Is(err, ErrProtocol) && !isClosedConn(err) {
				log.Printf("wire: connection error: %v", err)
			}
		}()
	}
}

// isTemporary reports whether err advertises itself as retryable.
// net.Error.Temporary is deprecated but still what accept errors
// (EMFILE, ECONNABORTED) implement; we treat it as a hint, never as
// proof of permanence.
func isTemporary(err error) bool {
	var te interface{ Temporary() bool }
	return errors.As(err, &te) && te.Temporary()
}

func isClosedConn(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// rejectConn completes the handshake with a non-OK status so the peer
// gets a clean typed error, then closes. Counted and logged as a
// lifecycle event.
func (s *Server) rejectConn(conn net.Conn, status byte) {
	s.wm.ConnsRejected.Inc()
	s.eng.Events().Emit(trace.Event{
		Kind: trace.EvWireReject, Tick: s.eng.Now(), Name: conn.RemoteAddr().String(),
	})
	conn.SetDeadline(time.Now().Add(s.cfg.idleTimeout))
	_ = writeHello(conn, ProtocolVersion, status)
	conn.Close()
}

// handshake validates the client hello and answers it. It runs under
// the idle deadline so a silent dialer cannot pin the handler.
func (s *Server) handshake(conn net.Conn) error {
	h, err := readHello(conn)
	if err != nil {
		s.wm.HandshakeFailures.Inc()
		s.wm.ConnsRejected.Inc()
		s.eng.Events().Emit(trace.Event{
			Kind: trace.EvWireReject, Tick: s.eng.Now(), Name: conn.RemoteAddr().String(),
		})
		return err
	}
	if h.version != ProtocolVersion {
		s.wm.HandshakeFailures.Inc()
		s.wm.ConnsRejected.Inc()
		_ = writeHello(conn, ProtocolVersion, statusVersion)
		return ErrProtocol
	}
	return writeHello(conn, ProtocolVersion, statusOK)
}

// handle runs one connection's request loop: handshake, then decode →
// respond → encode under per-operation deadlines, with panic recovery so
// one bad request cannot kill the process, and a decode byte cap so one
// hostile request cannot exhaust it.
func (s *Server) handle(conn net.Conn, st *connState) (err error) {
	requests := int64(0)
	defer func() {
		if r := recover(); r != nil {
			s.wm.PanicsRecovered.Inc()
			s.eng.Events().Emit(trace.Event{
				Kind: trace.EvWirePanic, Tick: s.eng.Now(), Name: conn.RemoteAddr().String(),
			})
			log.Printf("wire: recovered handler panic: %v\n%s", r, debug.Stack())
			err = nil // the panic is contained; the conn is simply closed
		}
		conn.Close()
		s.wm.ActiveConns.Add(-1)
		s.eng.Events().Emit(trace.Event{
			Kind: trace.EvWireConnClose, Tick: s.eng.Now(),
			Name: conn.RemoteAddr().String(), Count: requests,
		})
	}()
	s.wm.ActiveConns.Add(1)

	conn.SetDeadline(time.Now().Add(s.cfg.idleTimeout))
	if err := s.handshake(conn); err != nil {
		return err
	}
	s.wm.ConnsAccepted.Inc()
	s.eng.Events().Emit(trace.Event{
		Kind: trace.EvWireConnOpen, Tick: s.eng.Now(), Name: conn.RemoteAddr().String(),
	})

	capped := &cappedReader{r: conn, limit: s.cfg.maxMsgBytes}
	cr := &countingReader{r: capped}
	cw := &countingWriter{w: conn}
	dec := gob.NewDecoder(cr)
	enc := gob.NewEncoder(cw)
	for {
		var req Request
		capped.Reset()
		conn.SetDeadline(time.Now().Add(s.cfg.idleTimeout))
		if err := dec.Decode(&req); err != nil {
			if capped.Tripped() || errors.Is(err, ErrTooLarge) {
				s.wm.OversizedRejected.Inc()
				s.eng.Events().Emit(trace.Event{
					Kind: trace.EvWireReject, Tick: s.eng.Now(), Name: conn.RemoteAddr().String(),
				})
			}
			return s.noteTimeout(err)
		}
		s.mu.Lock()
		s.stats.MessagesReceived++
		s.stats.BytesReceived = cr.n
		s.mu.Unlock()
		if req.Kind == MsgClose {
			return nil
		}
		st.inFlight.Store(true)
		s.mu.Lock()
		hook := s.testRespondHook
		s.mu.Unlock()
		if hook != nil {
			hook(&req)
		}
		resp := s.respond(&req)
		conn.SetDeadline(time.Now().Add(s.cfg.idleTimeout))
		if err := enc.Encode(resp); err != nil {
			st.inFlight.Store(false)
			return s.noteTimeout(err)
		}
		st.inFlight.Store(false)
		requests++
		s.wm.RequestsServed.Inc()
		s.mu.Lock()
		s.stats.MessagesSent++
		s.stats.BytesSent = cw.n
		closing := s.closed
		s.mu.Unlock()
		if closing {
			// A graceful shutdown drained this request; exit instead of
			// waiting for another that will never be allowed to finish.
			return nil
		}
	}
}

// noteTimeout counts deadline expiries (distinct from peer hangups) and
// passes the error through.
func (s *Server) noteTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		s.wm.Timeouts.Inc()
		s.eng.Events().Emit(trace.Event{Kind: trace.EvWireTimeout, Tick: s.eng.Now()})
	}
	return err
}

func (s *Server) respond(req *Request) *Response {
	resp := &Response{Now: s.eng.Now()}
	switch req.Kind {
	case MsgTime:
		return resp
	case MsgMaterialize:
		// Adopt the client's trace ID (or mint one) so server-side
		// lifecycle events and the echoed Response carry the same
		// correlation key.
		tid := trace.ID(req.TraceID)
		if tid == 0 {
			tid = trace.NextID()
		}
		resp.TraceID = uint64(tid)
		sess := sql.NewSessionWithMetrics(s.eng, nil, s.sqlm)
		viewsBefore := sess.ViewReads()
		expr, err := sess.PlanQueryTraced(req.Query, tid)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		if !req.WantPatches {
			// Patch-free materialisations go through the validity-interval
			// result cache: a repeated remote query is answered with zero
			// re-evaluation while its window holds. Patched differences
			// keep the dedicated path below — their texp folds the helper
			// budget, which is per-request and uncacheable.
			key := ""
			if sess.ViewReads() == viewsBefore {
				key = algebra.PushDownSelections(expr).String()
			}
			qr, err := s.eng.QueryStamped(expr, key, tid)
			if err != nil {
				resp.Err = err.Error()
				return resp
			}
			resp.Now = qr.At
			resp.Texp = qr.Validity.ValidUntil
			resp.Cached = qr.Cached
			for _, c := range qr.Rel.Schema().Cols {
				resp.Cols = append(resp.Cols, WireColumn{Name: c.Name, Kind: c.Kind})
			}
			for _, row := range qr.Rel.RowsSorted(qr.At) {
				wr := WireRow{Texp: row.Texp, Vals: make([]WireValue, len(row.Tuple))}
				for i, v := range row.Tuple {
					wr.Vals[i] = ToWire(v)
				}
				resp.Rows = append(resp.Rows, wr)
			}
			s.eng.Events().Emit(trace.Event{
				Trace: tid, Kind: trace.EvWireMaterialize, Name: req.Query,
				Tick: qr.At, Texp: resp.Texp, Count: int64(len(resp.Rows)),
			})
			return resp
		}
		// MaterializeExpr holds the engine lock, so the rows, texp(e) and
		// helper are one consistent snapshot even while the server's
		// clock advances concurrently.
		rel, texp, helper, now, err := s.eng.MaterializeExpr(expr, req.WantPatches)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Now = now
		for _, c := range rel.Schema().Cols {
			resp.Cols = append(resp.Cols, WireColumn{Name: c.Name, Kind: c.Kind})
		}
		for _, row := range rel.RowsSorted(now) {
			wr := WireRow{Texp: row.Texp, Vals: make([]WireValue, len(row.Tuple))}
			for i, v := range row.Tuple {
				wr.Vals[i] = ToWire(v)
			}
			resp.Rows = append(resp.Rows, wr)
		}
		resp.Texp = texp
		// Ship only critical helper rows (those that will actually
		// reappear), soonest first; a patch budget truncates the queue
		// and pulls Texp back to the first event that did not fit
		// (§3.4.2).
		crit := helper[:0:0]
		for _, h := range helper {
			if h.InR > h.InS {
				crit = append(crit, h)
			}
		}
		sort.Slice(crit, func(i, j int) bool { return crit[i].InS < crit[j].InS })
		if req.PatchBudget > 0 && len(crit) > req.PatchBudget {
			resp.Texp = minTime(resp.Texp, crit[req.PatchBudget].InS)
			crit = crit[:req.PatchBudget]
		}
		for _, h := range crit {
			wp := WirePatch{InS: h.InS, InR: h.InR, Vals: make([]WireValue, len(h.Tuple))}
			for i, v := range h.Tuple {
				wp.Vals[i] = ToWire(v)
			}
			resp.Patches = append(resp.Patches, wp)
		}
		s.eng.Events().Emit(trace.Event{
			Trace: tid, Kind: trace.EvWireMaterialize, Name: req.Query,
			Tick: now, Texp: resp.Texp, Count: int64(len(resp.Rows)),
		})
		return resp
	default:
		resp.Err = "wire: unknown request kind"
		return resp
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func minTime(a, b xtime.Time) xtime.Time {
	if a < b {
		return a
	}
	return b
}
