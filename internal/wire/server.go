package wire

import (
	"encoding/gob"
	"errors"
	"io"
	"log"
	"net"
	"sort"
	"sync"

	"expdb/internal/engine"
	"expdb/internal/sql"
	"expdb/internal/trace"
	"expdb/internal/xtime"
)

// Server exposes an engine's relations to remote view nodes.
type Server struct {
	eng  *engine.Engine
	sqlm *sql.Metrics // shared by every per-request planning session
	ln   net.Listener

	mu      sync.Mutex
	stats   Stats
	closed  bool
	pending sync.WaitGroup
}

// NewServer wraps eng; call Serve with a listener to start.
func NewServer(eng *engine.Engine) *Server {
	return &Server{eng: eng, sqlm: &sql.Metrics{}}
}

// SQLMetrics returns the server's aggregated SQL planning metrics. The
// same sink is handed to every per-request session, so remote
// materialisations show up alongside local statements when the caller
// merges snapshots.
func (s *Server) SQLMetrics() *sql.Metrics { return s.sqlm }

// Listen starts accepting on addr (e.g. "127.0.0.1:0") in a background
// goroutine and returns the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	go s.acceptLoop()
	return ln.Addr().String(), nil
}

// Close stops accepting and waits for in-flight connections.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.pending.Wait()
	return err
}

// Stats returns the server-side traffic counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Server) acceptLoop() {
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.pending.Add(1)
		go func() {
			defer s.pending.Done()
			if err := s.handle(conn); err != nil && !errors.Is(err, io.EOF) {
				log.Printf("wire: connection error: %v", err)
			}
		}()
	}
}

func (s *Server) handle(conn net.Conn) error {
	defer conn.Close()
	cr := &countingReader{r: conn}
	cw := &countingWriter{w: conn}
	dec := gob.NewDecoder(cr)
	enc := gob.NewEncoder(cw)
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return err
		}
		s.mu.Lock()
		s.stats.MessagesReceived++
		s.stats.BytesReceived = cr.n
		s.mu.Unlock()
		if req.Kind == MsgClose {
			return nil
		}
		resp := s.respond(&req)
		if err := enc.Encode(resp); err != nil {
			return err
		}
		s.mu.Lock()
		s.stats.MessagesSent++
		s.stats.BytesSent = cw.n
		s.mu.Unlock()
	}
}

func (s *Server) respond(req *Request) *Response {
	resp := &Response{Now: s.eng.Now()}
	switch req.Kind {
	case MsgTime:
		return resp
	case MsgMaterialize:
		// Adopt the client's trace ID (or mint one) so server-side
		// lifecycle events and the echoed Response carry the same
		// correlation key.
		tid := trace.ID(req.TraceID)
		if tid == 0 {
			tid = trace.NextID()
		}
		resp.TraceID = uint64(tid)
		sess := sql.NewSessionWithMetrics(s.eng, nil, s.sqlm)
		expr, err := sess.PlanQueryTraced(req.Query, tid)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		// MaterializeExpr holds the engine lock, so the rows, texp(e) and
		// helper are one consistent snapshot even while the server's
		// clock advances concurrently.
		rel, texp, helper, now, err := s.eng.MaterializeExpr(expr, req.WantPatches)
		if err != nil {
			resp.Err = err.Error()
			return resp
		}
		resp.Now = now
		for _, c := range rel.Schema().Cols {
			resp.Cols = append(resp.Cols, WireColumn{Name: c.Name, Kind: c.Kind})
		}
		for _, row := range rel.Rows(now) {
			wr := WireRow{Texp: row.Texp, Vals: make([]WireValue, len(row.Tuple))}
			for i, v := range row.Tuple {
				wr.Vals[i] = ToWire(v)
			}
			resp.Rows = append(resp.Rows, wr)
		}
		resp.Texp = texp
		// Ship only critical helper rows (those that will actually
		// reappear), soonest first; a patch budget truncates the queue
		// and pulls Texp back to the first event that did not fit
		// (§3.4.2).
		crit := helper[:0:0]
		for _, h := range helper {
			if h.InR > h.InS {
				crit = append(crit, h)
			}
		}
		sort.Slice(crit, func(i, j int) bool { return crit[i].InS < crit[j].InS })
		if req.PatchBudget > 0 && len(crit) > req.PatchBudget {
			resp.Texp = minTime(resp.Texp, crit[req.PatchBudget].InS)
			crit = crit[:req.PatchBudget]
		}
		for _, h := range crit {
			wp := WirePatch{InS: h.InS, InR: h.InR, Vals: make([]WireValue, len(h.Tuple))}
			for i, v := range h.Tuple {
				wp.Vals[i] = ToWire(v)
			}
			resp.Patches = append(resp.Patches, wp)
		}
		s.eng.Events().Emit(trace.Event{
			Trace: tid, Kind: trace.EvWireMaterialize, Name: req.Query,
			Tick: now, Texp: resp.Texp, Count: int64(len(resp.Rows)),
		})
		return resp
	default:
		resp.Err = "wire: unknown request kind"
		return resp
	}
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}

type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func minTime(a, b xtime.Time) xtime.Time {
	if a < b {
		return a
	}
	return b
}
