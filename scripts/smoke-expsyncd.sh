#!/bin/sh
# Smoke test for the expsyncd operational surface: boot the daemon with
# durability and monitoring, verify /healthz, /readyz and both /metrics
# formats answer correctly, then require a clean exit on SIGTERM.
set -eu

DIR=$(mktemp -d)
METRICS_PORT=${SMOKE_METRICS_PORT:-19091}
WIRE_PORT=${SMOKE_WIRE_PORT:-17071}
BASE="http://127.0.0.1:${METRICS_PORT}"
LOG="$DIR/expsyncd.log"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/expsyncd" ./cmd/expsyncd

"$DIR/expsyncd" -serve ":${WIRE_PORT}" -metrics ":${METRICS_PORT}" \
    -data-dir "$DIR/data" -ticks 600 -log-format json >"$LOG" 2>&1 &
PID=$!

# Wait for the metrics listener (the daemon seeds its example database
# first, so a couple of seconds is generous).
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "expsyncd never served /healthz" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "expsyncd died during boot" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done

fail() {
    echo "$1" >&2
    cat "$LOG" >&2
    exit 1
}

# Liveness and readiness: a fresh boot has nothing to catch up, so both
# must answer 200 and the JSON body must carry the watchdog state.
curl -sf "$BASE/healthz" | grep -q '"live": true' || fail "/healthz body lacks live:true"
curl -sf "$BASE/readyz" | grep -q '"ready": true' || fail "/readyz body lacks ready:true"

# JSON metrics: the engine block and the monitoring-fed ring/WAL blocks.
JSON=$(curl -sf "$BASE/metrics")
echo "$JSON" | grep -q '"engine"' || fail "/metrics JSON lacks engine block"
echo "$JSON" | grep -q '"wal"' || fail "/metrics JSON lacks wal block"

# Prometheus exposition: typed families from several layers, histogram
# closing bucket present.
PROM=$(curl -sf "$BASE/metrics?format=prometheus")
for want in \
    '# TYPE expdb_inserts_total counter' \
    '# TYPE expdb_advance_duration_nanos histogram' \
    'le="+Inf"' \
    'expdb_wal_appends_total' \
    'expdb_health_ready 1' \
    'expdb_slo_dispatch_lag_ticks_bucket'; do
    echo "$PROM" | grep -qF "$want" || fail "prometheus exposition lacks: $want"
done

# Clean shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
PID=""
if [ "$EXIT" -ne 0 ]; then
    echo "expsyncd exited $EXIT after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi

grep -q '"msg":"shutdown complete"' "$LOG" || fail "no shutdown-complete log line"

# Storage fault phase: boot again with an injected fsync failure. The
# fault lands after boot (seeding used its sync budget restoring is not
# needed — the fresh data dir below guarantees a known sync count), and
# the daemon must DEGRADE, not die: /readyz flips to 503 with the
# disk-degraded check while /healthz stays live, then the background
# recovery loop restores readiness, and SIGTERM still exits clean.
LOG="$DIR/expsyncd-fault.log"
"$DIR/expsyncd" -serve ":${WIRE_PORT}" -metrics ":${METRICS_PORT}" \
    -data-dir "$DIR/fault-data" -ticks 600 -log-format json \
    -fault-fsync 15 -disk-retry-backoff 3s >"$LOG" 2>&1 &
PID=$!

i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    [ "$i" -le 50 ] || fail "fault-phase expsyncd never served /healthz"
    kill -0 "$PID" 2>/dev/null || fail "fault-phase expsyncd died during boot"
    sleep 0.2
done

# Wait for the injected fault to hit a tick's WAL sync: /readyz must go
# 503 (degraded) while the process stays up and /healthz stays 200.
i=0
while :; do
    CODE=$(curl -s -o "$DIR/readyz.json" -w '%{http_code}' "$BASE/readyz" || true)
    if [ "$CODE" = "503" ]; then
        grep -q 'disk-degraded' "$DIR/readyz.json" || fail "degraded /readyz lacks disk-degraded check"
        break
    fi
    kill -0 "$PID" 2>/dev/null || fail "expsyncd died instead of degrading"
    i=$((i + 1))
    [ "$i" -le 300 ] || fail "expsyncd never reported disk-degraded"
    sleep 0.1
done
curl -sf "$BASE/healthz" | grep -q '"live": true' || fail "degraded daemon not live"
grep -q '"msg":"disk degraded, database is read-only"' "$LOG" || fail "no degraded transition log line"

# The fault is one-shot, so the first backoff retry recovers.
i=0
until curl -sf "$BASE/readyz" >/dev/null 2>&1; do
    kill -0 "$PID" 2>/dev/null || fail "expsyncd died while degraded"
    i=$((i + 1))
    [ "$i" -le 300 ] || fail "expsyncd never recovered from disk fault"
    sleep 0.1
done
grep -q '"msg":"disk recovered, writes resumed"' "$LOG" || fail "no recovery transition log line"
PROM=$(curl -sf "$BASE/metrics?format=prometheus")
echo "$PROM" | grep -q 'expdb_disk_faults_total 1' || fail "prometheus lacks expdb_disk_faults_total 1"
echo "$PROM" | grep -q 'expdb_disk_recoveries_total 1' || fail "prometheus lacks expdb_disk_recoveries_total 1"

kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
PID=""
if [ "$EXIT" -ne 0 ]; then
    echo "fault-phase expsyncd exited $EXIT after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi
grep -q '"msg":"shutdown complete"' "$LOG" || fail "no fault-phase shutdown-complete log line"
echo "smoke test passed"
