#!/bin/sh
# Smoke test for the expsyncd operational surface: boot the daemon with
# durability and monitoring, verify /healthz, /readyz and both /metrics
# formats answer correctly, then require a clean exit on SIGTERM.
set -eu

DIR=$(mktemp -d)
METRICS_PORT=${SMOKE_METRICS_PORT:-19091}
WIRE_PORT=${SMOKE_WIRE_PORT:-17071}
BASE="http://127.0.0.1:${METRICS_PORT}"
LOG="$DIR/expsyncd.log"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

go build -o "$DIR/expsyncd" ./cmd/expsyncd

"$DIR/expsyncd" -serve ":${WIRE_PORT}" -metrics ":${METRICS_PORT}" \
    -data-dir "$DIR/data" -ticks 600 -log-format json >"$LOG" 2>&1 &
PID=$!

# Wait for the metrics listener (the daemon seeds its example database
# first, so a couple of seconds is generous).
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "expsyncd never served /healthz" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "expsyncd died during boot" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 0.2
done

fail() {
    echo "$1" >&2
    cat "$LOG" >&2
    exit 1
}

# Liveness and readiness: a fresh boot has nothing to catch up, so both
# must answer 200 and the JSON body must carry the watchdog state.
curl -sf "$BASE/healthz" | grep -q '"live": true' || fail "/healthz body lacks live:true"
curl -sf "$BASE/readyz" | grep -q '"ready": true' || fail "/readyz body lacks ready:true"

# JSON metrics: the engine block and the monitoring-fed ring/WAL blocks.
JSON=$(curl -sf "$BASE/metrics")
echo "$JSON" | grep -q '"engine"' || fail "/metrics JSON lacks engine block"
echo "$JSON" | grep -q '"wal"' || fail "/metrics JSON lacks wal block"

# Prometheus exposition: typed families from several layers, histogram
# closing bucket present.
PROM=$(curl -sf "$BASE/metrics?format=prometheus")
for want in \
    '# TYPE expdb_inserts_total counter' \
    '# TYPE expdb_advance_duration_nanos histogram' \
    'le="+Inf"' \
    'expdb_wal_appends_total' \
    'expdb_health_ready 1' \
    'expdb_slo_dispatch_lag_ticks_bucket'; do
    echo "$PROM" | grep -qF "$want" || fail "prometheus exposition lacks: $want"
done

# Clean shutdown: SIGTERM must drain and exit 0.
kill -TERM "$PID"
EXIT=0
wait "$PID" || EXIT=$?
PID=""
if [ "$EXIT" -ne 0 ]; then
    echo "expsyncd exited $EXIT after SIGTERM" >&2
    cat "$LOG" >&2
    exit 1
fi

grep -q '"msg":"shutdown complete"' "$LOG" || fail "no shutdown-complete log line"
echo "smoke test passed"
