// Benchmarks regenerating the measurable core of every paper artifact —
// one benchmark per experiment id of DESIGN.md §3 (E1–E11). The printed
// tables come from cmd/expbench; these testing.B benches time the hot
// operation each experiment is about, so regressions in the reproduction
// show up in `go test -bench=. -benchmem`.
package expdb_test

import (
	"io"
	"testing"

	"expdb"
	"expdb/algebra"
	"expdb/internal/bench"
	"expdb/internal/engine"
	"expdb/internal/relation"
	"expdb/internal/view"
	"expdb/internal/workload"
	"expdb/internal/xtime"
)

// newsJoin builds the scaled §2.1 join over n users.
func newsJoin(b *testing.B, n int) (algebra.Expr, *relation.Relation, *relation.Relation) {
	b.Helper()
	pol, el := workload.NewsService(n, 42)
	j, err := algebra.EquiJoin(algebra.NewBase("Pol", pol), 0, algebra.NewBase("El", el), 0)
	if err != nil {
		b.Fatal(err)
	}
	return j, pol, el
}

func newsDiff(b *testing.B, n int) algebra.Expr {
	b.Helper()
	pol, el := workload.NewsService(n, 42)
	p1, err := algebra.NewProject([]int{0}, algebra.NewBase("Pol", pol))
	if err != nil {
		b.Fatal(err)
	}
	p2, err := algebra.NewProject([]int{0}, algebra.NewBase("El", el))
	if err != nil {
		b.Fatal(err)
	}
	d, err := algebra.NewDiff(p1, p2)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkE1MonotonicMaintenance (Figures 1–2): the cost of maintaining
// a materialised monotonic result — just the expτ filter.
func BenchmarkE1MonotonicMaintenance(b *testing.B) {
	j, _, _ := newsJoin(b, 2000)
	mat, err := j.Eval(0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.CountAt(xtime.Time(i % 200))
	}
}

// BenchmarkE2TheoremOne: recomputation cost that Theorem 1 makes
// unnecessary for monotonic expressions.
func BenchmarkE2TheoremOne(b *testing.B) {
	j, _, _ := newsJoin(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Eval(xtime.Time(i % 200)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3NonMonotonic (Figure 3): evaluating the non-monotonic
// difference (the recomputation unit of the invalidation analysis).
func BenchmarkE3NonMonotonic(b *testing.B) {
	d := newsDiff(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Eval(xtime.Time(i % 200)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE4AggregatePolicies (Table 1): aggregation with the three
// expiration policies.
func BenchmarkE4AggregatePolicies(b *testing.B) {
	pol, _ := workload.NewsService(5000, 7)
	for _, policy := range []algebra.AggPolicy{
		algebra.PolicyNaive, algebra.PolicyNeutral, algebra.PolicyExact,
	} {
		gb, err := algebra.GroupBy([]int{1},
			[]algebra.AggFunc{{Kind: algebra.AggSum, Col: 1}}, policy,
			algebra.NewBase("Pol", pol))
		if err != nil {
			b.Fatal(err)
		}
		b.Run(policy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := gb.Eval(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5DifferenceLifetime (Table 2 / formula (11)): deriving
// texp(e) of a difference, i.e. scanning for the critical set.
func BenchmarkE5DifferenceLifetime(b *testing.B) {
	d := newsDiff(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.ExprTexp(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6PatchVsRecompute (Theorem 3): a maintenance step of a
// patched difference view versus full recomputation.
func BenchmarkE6PatchVsRecompute(b *testing.B) {
	b.Run("patched-read", func(b *testing.B) {
		d := newsDiff(b, 2000).(*algebra.Diff)
		v, err := view.New("d", d, view.WithPatching())
		if err != nil {
			b.Fatal(err)
		}
		if err := v.Materialize(0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := v.Read(xtime.Time(i % 200)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompute-read", func(b *testing.B) {
		d := newsDiff(b, 2000)
		v, err := view.New("d", d, view.WithMode(view.ModeAlwaysRecompute))
		if err != nil {
			b.Fatal(err)
		}
		if err := v.Materialize(0); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := v.Read(xtime.Time(i % 200)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE7EagerVsLazy (§3.2): advancing an engine through a churn-
// heavy session workload.
func BenchmarkE7EagerVsLazy(b *testing.B) {
	cfgs := []struct {
		name string
		opts []engine.Option
	}{
		{"eager-heap", []engine.Option{engine.WithScheduler(engine.SchedulerHeap)}},
		{"eager-wheel", []engine.Option{engine.WithScheduler(engine.SchedulerWheel)}},
		{"lazy-16", []engine.Option{engine.WithSweep(engine.SweepLazy, 16)}},
	}
	sessions := workload.Sessions(5000, 3, 10, 200, 5)
	for _, cfg := range cfgs {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := engine.New(cfg.opts...)
				if err := e.CreateTable("s", expdb.Schema{Cols: []expdb.Column{
					{Name: "id", Kind: expdb.Int(0).Kind()},
				}}); err != nil {
					b.Fatal(err)
				}
				var horizon xtime.Time
				for _, s := range sessions {
					texp := s.Start + s.TTL
					if err := e.Insert("s", expdb.Ints(s.ID), texp); err != nil {
						b.Fatal(err)
					}
					if texp > horizon {
						horizon = texp
					}
				}
				if err := e.Advance(horizon + 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE8Schroedinger (§3.3–3.4): computing the validity interval set
// I(e) of a difference.
func BenchmarkE8Schroedinger(b *testing.B) {
	d := newsDiff(b, 2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Validity(0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE9Rewrites (§3.1): applying the selection push-down rewrite to
// a plan.
func BenchmarkE9Rewrites(b *testing.B) {
	d := newsDiff(b, 100)
	sel, err := algebra.NewSelect(algebra.ColConst{
		Col: 0, Op: algebra.OpLt, Const: expdb.Int(50),
	}, d)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if algebra.PushDownSelections(sel) == nil {
			b.Fatal("nil plan")
		}
	}
}

// BenchmarkFullReport regenerates every experiment report (what
// cmd/expbench prints).
func BenchmarkFullReport(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Run(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE10PatchBudget (§3.4.2): one maintenance step of a budgeted
// patched view (queue pop + possible recomputation amortised in).
func BenchmarkE10PatchBudget(b *testing.B) {
	d := newsDiff(b, 2000).(*algebra.Diff)
	v, err := view.New("d", d, view.WithPatchBudget(64))
	if err != nil {
		b.Fatal(err)
	}
	if err := v.Materialize(0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := v.Read(xtime.Time(i % 200)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE11Incremental (§3.1): per-operator maintenance of a stacked
// plan versus whole-expression recomputation (compare with
// BenchmarkE3NonMonotonic).
func BenchmarkE11Incremental(b *testing.B) {
	d := newsDiff(b, 2000)
	inc := view.NewIncremental(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := inc.Eval(xtime.Time(i % 200)); err != nil {
			b.Fatal(err)
		}
	}
}
