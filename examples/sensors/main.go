// Sensors: monitoring data with a-priori lifetimes — the intro's
// "temperature or location samples" use case. Every reading is valid for
// a fixed window; aggregate views over the *currently valid* readings
// maintain themselves, and the Schrödinger interval semantics answers
// reads even when a difference view is momentarily invalid.
package main

import (
	"fmt"

	"expdb"
	"expdb/algebra"
	"expdb/internal/view"
	"expdb/internal/workload"
)

func main() {
	db := expdb.Open(expdb.WithTimingWheel())
	db.MustExec(`CREATE TABLE readings (sensor INT, temp INT)`)

	// 20 sensors reporting for 10 rounds; each reading valid for 40
	// ticks.
	samples := workload.Samples(20, 10, 25, 40, 3)
	horizon := expdb.Time(0)
	pending := samples
	fmt.Printf("replaying %d sensor readings\n", len(samples))

	// Live aggregates over valid readings only: expired samples drop out
	// of MIN/MAX/AVG automatically.
	db.MustExec(`CREATE MATERIALIZED VIEW climate AS
	             SELECT sensor, MIN(temp), MAX(temp), AVG(temp) FROM readings GROUP BY sensor`)

	// An alerting view through the algebra API: sensors whose current
	// maximum exceeds a threshold, answered with interval validity and
	// moved-backward reads (slightly stale answers beat recomputation on
	// a constrained gateway, §3.3).
	base, err := db.Engine().Base("readings")
	if err != nil {
		panic(err)
	}
	hot, err := algebra.GroupBy([]int{0},
		[]algebra.AggFunc{{Kind: algebra.AggMax, Col: 1}},
		algebra.PolicyNeutral, base)
	if err != nil {
		panic(err)
	}
	hotSel, err := algebra.NewSelect(algebra.ColConst{Col: 1, Op: algebra.OpGe, Const: expdb.Int(30)}, hot)
	if err != nil {
		panic(err)
	}
	alerts, err := db.CreateView("alerts", hotSel,
		expdb.WithIntervalValidity(), expdb.WithRecoverBackward())
	if err != nil {
		panic(err)
	}

	for t := expdb.Time(0); t <= 300; t += 10 {
		if err := db.Advance(t); err != nil {
			panic(err)
		}
		// Feed readings whose timestamp has arrived.
		rest := pending[:0]
		for _, s := range pending {
			if s.At <= t {
				texp := s.At + s.TTL
				if texp <= t {
					continue // arrived already stale
				}
				if err := db.Insert("readings", expdb.Ints(s.Sensor, s.Value), texp); err != nil {
					panic(err)
				}
				// A new reading is an update to the base data: refresh
				// dependent materialisations (the paper's no-update
				// assumption ends where inserts begin).
				db.MustExec("REFRESH VIEW climate")
				if err := alerts.Materialize(t); err != nil {
					panic(err)
				}
				if texp > horizon {
					horizon = texp
				}
			} else {
				rest = append(rest, s)
			}
		}
		pending = rest
		if t%100 == 0 {
			res := db.MustExec(`SELECT * FROM climate`)
			fmt.Printf("\n-- climate view at t=%s (%d sensors with valid data):\n%s",
				t, res.Rel.CountAt(t), res.Rel.Render(t))
			rel, info, err := alerts.Read(t)
			if err != nil {
				panic(err)
			}
			fmt.Printf("alerts (%s, as of t=%s): %d sensors ≥ 30°\n",
				info.Source, info.At, rel.CountAt(info.At))
		}
	}

	s := alerts.Stats()
	fmt.Printf("\nalerts view: reads=%d fromMat=%d moved=%d recomputed=%d\n",
		s.Reads, s.ServedFromMat, s.Moved, s.Recomputations)
	_ = view.ModeInterval // documents which mode the alerts view runs in
	fmt.Printf("all readings expired by t=%s; final climate view is empty: %v\n",
		horizon, db.MustExec(`SELECT * FROM climate`).Rel.CountAt(db.Now()) == 0)
}
