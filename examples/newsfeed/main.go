// Newsfeed: the paper's §2.1 personalised news service at scale — user
// profiles with topic-dependent lifetimes, a join view matching users
// across topics, a histogram view for editorial dashboards, and a
// difference view ("politics readers not following the election") kept
// alive forever by Theorem 3 patching.
package main

import (
	"fmt"

	"expdb"
	"expdb/algebra"
	"expdb/internal/relation"
	"expdb/internal/workload"
)

func main() {
	db := expdb.Open()
	db.MustExec(`CREATE TABLE pol (uid INT, deg INT)`)
	db.MustExec(`CREATE TABLE el  (uid INT, deg INT)`)

	// Generate profiles: politics interests live long (a core topic),
	// election interests are short-term — exactly the asymmetry the
	// paper's example encodes.
	pol, el := workload.NewsService(2000, 1)
	loadTable(db, "pol", pol)
	loadTable(db, "el", el)
	fmt.Printf("loaded %d politics and %d election profiles\n",
		pol.CountAt(0), el.CountAt(0))

	// Dashboard views.
	db.MustExec(`CREATE MATERIALIZED VIEW interest_histogram AS
	             SELECT deg, COUNT(*) FROM pol GROUP BY deg`)
	db.MustExec(`CREATE MATERIALIZED VIEW engaged AS
	             SELECT pol.uid FROM pol JOIN el ON pol.uid = el.uid WHERE el.deg >= 80`)
	db.MustExec(`CREATE MATERIALIZED VIEW pol_only WITH (patching) AS
	             SELECT uid FROM pol EXCEPT SELECT uid FROM el`)

	// The same queries through the algebra API, with the §3.1 rewrite.
	polBase, err := db.Engine().Base("pol")
	if err != nil {
		panic(err)
	}
	elBase, err := db.Engine().Base("el")
	if err != nil {
		panic(err)
	}
	p1, err := algebra.NewProject([]int{0}, polBase)
	if err != nil {
		panic(err)
	}
	p2, err := algebra.NewProject([]int{0}, elBase)
	if err != nil {
		panic(err)
	}
	d, err := algebra.NewDiff(p1, p2)
	if err != nil {
		panic(err)
	}
	sel, err := algebra.NewSelect(algebra.ColConst{Col: 0, Op: algebra.OpLt, Const: expdb.Int(100)}, d)
	if err != nil {
		panic(err)
	}
	// Compare invalidation times for a materialisation computed at time 0
	// (both tables still fully populated): the pushed-down plan's critical
	// set contains only the selected users, so it invalidates later.
	rewritten := algebra.PushDownSelections(sel)
	t1, _ := sel.ExprTexp(0)
	t2, _ := rewritten.ExprTexp(0)
	fmt.Printf("\nrewrite (§3.1), materialised at 0: texp(σ(pol−el)) = %s ≤ texp(σ(pol)−σ(el)) = %s\n", t1, t2)

	// Run the service: profiles expire tick by tick; views follow along.
	for _, tick := range []expdb.Time{10, 30, 60, 120, 200} {
		db.MustExec(fmt.Sprintf("ADVANCE TO %d", tick))
		engaged := db.MustExec(`SELECT * FROM engaged`).Rel.CountAt(tick)
		polOnly := db.MustExec(`SELECT * FROM pol_only`).Rel.CountAt(tick)
		topics := db.MustExec(`SELECT * FROM interest_histogram`).Rel.CountAt(tick)
		fmt.Printf("t=%-4s engaged=%-5d politics-only=%-5d live-topics=%-4d\n",
			db.Now(), engaged, polOnly, topics)
	}

	// Maintenance report: the monotonic join never recomputes, the
	// patched difference never recomputes (Theorem 3), the histogram
	// recomputes only when an aggregate value changed while its partition
	// was still alive.
	fmt.Println("\nview maintenance:")
	for _, name := range []string{"interest_histogram", "engaged", "pol_only"} {
		v, err := db.Engine().Catalog().View(name)
		if err != nil {
			panic(err)
		}
		s := v.Stats()
		fmt.Printf("  %-20s reads=%-3d fromMat=%-3d recomputed=%-3d patches=%d\n",
			name, s.Reads, s.ServedFromMat, s.Recomputations, s.PatchesApplied)
	}

}

func loadTable(db *expdb.DB, name string, src *relation.Relation) {
	src.All(func(row relation.Row) {
		if err := db.Insert(name, row.Tuple, row.Texp); err != nil {
			panic(err)
		}
	})
}
