// Sessions: automatic HTTP-session and credential management — the
// intro's "session keys, credentials, tickets" use case. Sessions expire
// without any DELETE statements; keep-alives extend lifetimes by
// re-insertion; ON-EXPIRE triggers do the cleanup that application code
// would otherwise poll for.
package main

import (
	"fmt"

	"expdb"
)

func main() {
	db := expdb.Open()
	db.MustExec(`CREATE TABLE sessions (sid INT, uid INT)`)
	db.MustExec(`CREATE TABLE tokens   (tok INT, sid INT)`)

	// Expiration triggers replace cleanup cron jobs: revoke a session's
	// tokens the moment the session expires.
	expired := 0
	if err := db.OnExpire("sessions", func(table string, row expdb.Row, at expdb.Time) {
		expired++
		sid := row.Tuple[0].AsInt()
		res := db.MustExec(fmt.Sprintf("DELETE FROM tokens WHERE sid = %d", sid))
		fmt.Printf("t=%-3s session %d expired → %s\n", at, sid, res.Msg)
	}); err != nil {
		panic(err)
	}

	// A login issues a session with a 30-tick TTL and a short-lived token.
	login := func(sid, uid int64) {
		if err := db.InsertTTL("sessions", expdb.Ints(sid, uid), 30); err != nil {
			panic(err)
		}
		if err := db.InsertTTL("tokens", expdb.Ints(sid*100, sid), 10); err != nil {
			panic(err)
		}
	}
	// A keep-alive re-inserts with a fresh TTL: the engine keeps the max,
	// cancelling the earlier expiration (no stale triggers fire).
	keepAlive := func(sid, uid int64) {
		if err := db.InsertTTL("sessions", expdb.Ints(sid, uid), 30); err != nil {
			panic(err)
		}
	}

	login(1, 100)
	login(2, 200)
	login(3, 300)

	// A live dashboard: sessions per user — maintained, not polled.
	db.MustExec(`CREATE MATERIALIZED VIEW active AS
	             SELECT uid, COUNT(*) FROM sessions GROUP BY uid`)

	for t := expdb.Time(5); t <= 80; t += 5 {
		if err := db.Advance(t); err != nil {
			panic(err)
		}
		if t == 20 {
			keepAlive(2, 200) // user 200 is still clicking around
			fmt.Println("t=20  keep-alive for session 2")
		}
		if t == 40 {
			login(4, 100) // second device for user 100
			fmt.Println("t=40  new session 4 for user 100")
		}
	}

	res := db.MustExec(`SELECT * FROM active`)
	fmt.Printf("\nactive sessions per user at t=%s:\n%s", db.Now(), res.Rel.Render(db.Now()))
	fmt.Printf("sessions expired automatically: %d (no DELETE statements issued for them)\n", expired)

	st := db.Engine().Stats()
	fmt.Printf("engine: inserts=%d expired=%d triggers=%d\n",
		st.Inserts, st.TuplesExpired, st.TriggersFired)
}
