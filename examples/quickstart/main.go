// Quickstart: the paper's Figure 1–3 walk-through in a dozen statements —
// tables whose tuples expire, views that maintain themselves, and the
// moment a non-monotonic view has to be recomputed.
package main

import (
	"fmt"
	"os"

	"expdb"
)

func main() {
	db := expdb.OpenWithNotify(os.Stdout)

	// The example database of the paper (§2.1): user-interest profiles
	// whose expiration times say how long each profile stays in effect.
	db.MustExec(`CREATE TABLE pol (uid INT, deg INT)`)
	db.MustExec(`CREATE TABLE el  (uid INT, deg INT)`)
	db.MustExec(`INSERT INTO pol VALUES (1, 25) EXPIRES AT 10`)
	db.MustExec(`INSERT INTO pol VALUES (2, 25) EXPIRES AT 15`)
	db.MustExec(`INSERT INTO pol VALUES (3, 35) EXPIRES AT 10`)
	db.MustExec(`INSERT INTO el VALUES (1, 75) EXPIRES AT 5`)
	db.MustExec(`INSERT INTO el VALUES (2, 85) EXPIRES AT 3`)
	db.MustExec(`INSERT INTO el VALUES (4, 90) EXPIRES AT 2`)

	// A monotonic view: valid forever, maintained by expiration alone
	// (Theorem 1).
	db.MustExec(`CREATE MATERIALIZED VIEW matches AS
	             SELECT pol.uid, pol.deg, el.deg FROM pol JOIN el ON pol.uid = el.uid`)

	// A non-monotonic view: the histogram of Figure 3(a), which the
	// engine knows becomes invalid at time 10.
	db.MustExec(`CREATE MATERIALIZED VIEW hist AS
	             SELECT deg, COUNT(*) FROM pol GROUP BY deg`)

	// EXPLAIN surfaces the paper's machinery: monotonicity, texp(e) and
	// the Schrödinger validity intervals.
	fmt.Println("-- EXPLAIN the Figure 3(b) difference:")
	fmt.Println(db.MustExec(`EXPLAIN SELECT uid FROM pol EXCEPT SELECT uid FROM el`).Msg)
	fmt.Println()

	for _, tick := range []expdb.Time{0, 3, 5, 10} {
		if tick > 0 {
			db.MustExec(fmt.Sprintf("ADVANCE TO %d", tick))
		}
		fmt.Printf("-- time %s --\n", db.Now())
		res := db.MustExec(`SELECT * FROM matches`)
		fmt.Printf("matches (%d rows):\n%s", res.Rel.CountAt(tick), res.Rel.Render(tick))
		res = db.MustExec(`SELECT * FROM hist`)
		fmt.Printf("hist (%d rows):\n%s\n", res.Rel.CountAt(tick), res.Rel.Render(tick))
	}

	// The views did their own bookkeeping: matches never recomputed,
	// hist recomputed exactly once — at time 10, as the paper derives.
	for _, name := range []string{"matches", "hist"} {
		v, err := db.Engine().Catalog().View(name)
		if err != nil {
			panic(err)
		}
		s := v.Stats()
		fmt.Printf("view %-8s reads=%d servedFromMaterialisation=%d recomputations=%d\n",
			name, s.Reads, s.ServedFromMat, s.Recomputations)
	}
}
