// Package expdb is an in-memory relational database with first-class
// expiration times, reproducing "Expiration Times for Data Management"
// (Schmidt, Jensen, Šaltenis — ICDE 2006).
//
// Every tuple carries an expiration time after which it silently ceases
// to be current; queries never see expired data; materialised views stay
// in synchrony with their base relations by looking only at their own
// expiration metadata, recomputing (or patching) only when the paper's
// invalidation analysis says they must. Expiration times surface to users
// in exactly two places, as the paper prescribes: on insertion (the
// EXPIRES clause / texp argument) and in ON-EXPIRE triggers.
//
// The quickest way in is the SQL surface:
//
//	db := expdb.Open()
//	db.MustExec(`CREATE TABLE pol (uid INT, deg INT)`)
//	db.MustExec(`INSERT INTO pol VALUES (1, 25) EXPIRES AT 10`)
//	db.MustExec(`CREATE MATERIALIZED VIEW hist AS
//	             SELECT deg, COUNT(*) FROM pol GROUP BY deg`)
//	db.MustExec(`ADVANCE TO 10`)
//	res := db.MustExec(`SELECT * FROM hist`) // recomputed exactly when needed
//
// The algebra package (expdb/algebra) exposes the expression layer for
// programmatic use, and Engine gives access to triggers, sweeping policy
// and the catalog.
package expdb

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"expdb/internal/algebra"
	"expdb/internal/engine"
	"expdb/internal/interval"
	"expdb/internal/relation"
	"expdb/internal/sql"
	"expdb/internal/trace"
	"expdb/internal/tuple"
	"expdb/internal/value"
	"expdb/internal/vfs"
	"expdb/internal/view"
	"expdb/internal/wire"
	"expdb/internal/xtime"
)

// Re-exported core types. The library's packages live under internal/;
// these aliases are the supported public surface.
type (
	// Time is an instant of the logical clock; Infinity never arrives.
	Time = xtime.Time
	// Value is a typed scalar attribute value.
	Value = value.Value
	// Tuple is an ordered list of attribute values.
	Tuple = tuple.Tuple
	// Schema describes a relation's columns.
	Schema = tuple.Schema
	// Column is one schema attribute.
	Column = tuple.Column
	// Relation is a set of tuples with expiration times.
	Relation = relation.Relation
	// Row pairs a tuple with its expiration time.
	Row = relation.Row
	// View is a materialised expression with independent maintenance.
	View = view.View
	// ViewOption configures a view (see the Mode/Recover re-exports).
	ViewOption = view.Option
	// ReadInfo says how a view read was answered: from the
	// materialisation, by recomputation, or moved to another instant.
	ReadInfo = view.ReadInfo
	// Source is the provenance tag inside ReadInfo.
	Source = view.Source
	// Incremental is a per-operator maintainer built by NewIncremental.
	Incremental = view.Incremental
	// Expr is an algebra expression (build them with expdb/algebra).
	Expr = algebra.Expr
	// Result is the outcome of executing a SQL statement.
	Result = sql.Result
	// Engine is the underlying database engine.
	Engine = engine.Engine
	// EngineOption configures Open.
	EngineOption = engine.Option
	// TriggerFunc observes tuple expirations.
	TriggerFunc = engine.TriggerFunc
	// IntervalSet is a Schrödinger validity set (§3.3–3.4 of the paper).
	IntervalSet = interval.Set
	// Validity is the uniform result stamp [At, ValidUntil): the answer
	// was computed at At and stays correct at every instant before
	// ValidUntil = texp(e). Result, ReadInfo and the wire client all
	// carry it, so every read surface shares one freshness currency.
	Validity = interval.Validity
	// CacheMetrics is the validity-interval result cache's snapshot:
	// hit/miss/invalidation/eviction counters, entry count and the
	// hit-latency histogram.
	CacheMetrics = engine.ResultCacheMetrics
	// MetricsSnapshot is a point-in-time copy of the engine's observability
	// counters, histograms and per-view maintenance split (JSON-ready).
	MetricsSnapshot = engine.MetricsSnapshot
	// SQLMetricsSnapshot is the SQL session's slice of a snapshot:
	// statements by kind plus parse/exec latency.
	SQLMetricsSnapshot = sql.MetricsSnapshot
	// TraceID identifies one traced operation; statements stamp it on
	// their Result and on every lifecycle event they cause.
	TraceID = trace.ID
	// Event is one structured lifecycle record: a tuple-expiry batch, a
	// view invalidation/recompute/patch, a sweep, a budget eviction.
	Event = trace.Event
	// EventKind classifies an Event.
	EventKind = trace.EventKind
	// Span is one timed step of a traced statement.
	Span = trace.Span
	// Trace is a recorded slow statement: text, tick, span tree, total.
	Trace = trace.Trace
	// WireServer exposes an engine's relations to remote view nodes over
	// the fault-tolerant wire protocol (deadlines, connection limits,
	// panic recovery, graceful shutdown).
	WireServer = wire.Server
	// WireClient is a remote view node: it materialises once, answers
	// reads locally while the copy is valid, and rides out network
	// failures in a degraded-but-correct state.
	WireClient = wire.Client
	// WireClientState is the client's connectivity state (connected or
	// degraded).
	WireClientState = wire.State
	// WireServerOption configures a WireServer (deadlines, caps, drain).
	WireServerOption = wire.ServerOption
	// WireClientOption configures a WireClient at dial time (timeouts,
	// reconnect backoff).
	WireClientOption = wire.ClientOption
	// WireStats counts protocol traffic for one endpoint.
	WireStats = wire.Stats
	// WireMetricsSnapshot is the server's fault-tolerance counters:
	// conns accepted/rejected, timeouts, panics recovered, reconnects.
	WireMetricsSnapshot = wire.MetricsSnapshot
	// RecoveryInfo reports what a durable open reconstructed from disk:
	// restored clock, tables/views/rows, log records replayed, whether a
	// torn log tail was truncated, and the trace ID the catch-up expiry
	// batch will carry.
	RecoveryInfo = engine.RecoveryInfo
	// DurabilityState is the engine's durability posture: memory-only,
	// healthy, or disk-degraded read-only (see DB.DurabilityState).
	DurabilityState = engine.DurabilityState
	// FS abstracts the durability layer's filesystem access; pass one via
	// WithVFS. Production uses the OS passthrough, tests inject FaultFS.
	FS = vfs.FS
	// FaultFS wraps an FS with deterministic fault injection: scripted
	// fsync failures, ENOSPC quotas, read errors and torn writes.
	FaultFS = vfs.FaultFS
)

// NewFaultFS wraps inner (usually OSFS()) with fault injection.
var NewFaultFS = vfs.NewFault

// OSFS returns the passthrough filesystem durability uses by default.
func OSFS() FS { return vfs.OS() }

// Wire client connectivity states (see WireClient.State).
const (
	// WireConnected: the last network operation succeeded.
	WireConnected = wire.StateConnected
	// WireDegraded: the connection is down; reads are served from the
	// local materialisation while it remains valid (tau < texp).
	WireDegraded = wire.StateDegraded
)

// Where a view read came from (see ReadInfo.Source).
const (
	// SourceMaterialised: served from the maintained materialisation.
	SourceMaterialised = view.SourceMaterialised
	// SourceRecomputed: the expression was re-evaluated against base data.
	SourceRecomputed = view.SourceRecomputed
	// SourceMovedBackward: answered at the most recent valid instant.
	SourceMovedBackward = view.SourceMovedBackward
	// SourceMovedForward: answered as of the next valid instant.
	SourceMovedForward = view.SourceMovedForward
)

// Sentinel errors. Every layer wraps rather than replaces these, so
// errors.Is works on anything the façade or the SQL surface returns.
var (
	// ErrNoSuchTable: the named base table does not exist.
	ErrNoSuchTable = engine.ErrNoSuchTable
	// ErrNoSuchView: the named view does not exist.
	ErrNoSuchView = engine.ErrNoSuchView
	// ErrSchemaMismatch: a tuple does not fit the table's schema.
	ErrSchemaMismatch = engine.ErrSchemaMismatch
	// ErrInvalidRead: a view with recovery=reject was read outside its
	// validity interval.
	ErrInvalidRead = engine.ErrInvalidRead
	// ErrCacheDisabled: a cache-specific operation (SHOW CACHE,
	// DB.CacheMetrics) ran while the result cache is off
	// (WithResultCache(0) / SetResultCache(0)).
	ErrCacheDisabled = engine.ErrCacheDisabled
	// ErrWireProtocol: the remote peer is not an expdb wire endpoint or
	// speaks an incompatible version (detected at handshake).
	ErrWireProtocol = wire.ErrProtocol
	// ErrWireServerBusy: the wire server is at its connection limit and
	// cleanly rejected the dial.
	ErrWireServerBusy = wire.ErrServerBusy
	// ErrWireTooLarge: a single wire message exceeded the decode cap.
	ErrWireTooLarge = wire.ErrTooLarge
	// ErrWireDegraded: the client's local copy is invalid AND every
	// reconnect attempt failed — the only condition under which a
	// degraded read gives up.
	ErrWireDegraded = wire.ErrDegraded
	// ErrReadOnly: a mutation was rejected because a disk failure put the
	// database in degraded read-only mode. The mutation was NOT applied;
	// reads, views and clock advances keep working from memory while
	// background recovery retries (see DB.DurabilityState).
	ErrReadOnly = engine.ErrReadOnly
	// ErrFaultInjected tags every failure a FaultFS injects, so tests can
	// tell scripted faults from real ones.
	ErrFaultInjected = vfs.ErrInjected
)

// Durability states (see DB.DurabilityState).
const (
	// DurabilityMemoryOnly: no WAL configured.
	DurabilityMemoryOnly = engine.DurabilityMemoryOnly
	// DurabilityHealthy: the WAL is open and accepting writes.
	DurabilityHealthy = engine.DurabilityHealthy
	// DurabilityDegraded: a disk failure made the database read-only;
	// background recovery is retrying with capped jittered backoff.
	DurabilityDegraded = engine.DurabilityDegraded
)

// Infinity is the expiration time of data that never expires.
const Infinity = xtime.Infinity

// NewTraceID allocates a fresh trace ID, e.g. to tag an
// Engine.AdvanceTraced call or to correlate daemon log lines with the
// lifecycle events they caused.
func NewTraceID() TraceID { return trace.NextID() }

// Value constructors.
var (
	// Int makes an integer value.
	Int = value.Int
	// Float makes a floating-point value.
	Float = value.Float
	// Str makes a string value.
	Str = value.String_
	// Bool makes a boolean value.
	Bool = value.Bool
	// Null is the NULL value.
	Null = value.Null
)

// Ints builds an all-integer tuple.
var Ints = tuple.Ints

// View options (see package view for semantics). These are declared
// functions, not func-typed vars, so they show up in godoc with stable
// signatures and cannot be reassigned by client code.

// WithPatching enables Theorem 3 patch queues on difference views.
func WithPatching() ViewOption { return view.WithPatching() }

// WithPatchBudget bounds the patch queue to k entries (§3.4.2 trade-off
// between up-front transfer and future recomputation).
func WithPatchBudget(k int) ViewOption { return view.WithPatchBudget(k) }

// NewIncremental builds a per-operator maintainer for an expression
// (§3.1 "act on a per-operator basis"): invalidations recompute only
// the invalid operators, not the whole plan.
func NewIncremental(expr Expr) *Incremental { return view.NewIncremental(expr) }

// WithIntervalValidity answers reads using Schrödinger validity
// intervals instead of the single expression expiration time.
func WithIntervalValidity() ViewOption { return view.WithMode(view.ModeInterval) }

// WithRecoverReject makes invalid reads fail instead of recomputing.
func WithRecoverReject() ViewOption { return view.WithRecovery(view.RecoverReject) }

// WithRecoverBackward answers invalid reads from the most recent valid
// instant (requires WithIntervalValidity).
func WithRecoverBackward() ViewOption { return view.WithRecovery(view.RecoverBackward) }

// WithRecoverForward answers invalid reads as of the next valid instant
// (requires WithIntervalValidity).
func WithRecoverForward() ViewOption { return view.WithRecovery(view.RecoverForward) }

// Engine options.

// WithEagerSweep removes tuples and fires triggers at the exact
// expiration tick (the default).
func WithEagerSweep() EngineOption { return engine.WithSweep(engine.SweepEager, 0) }

// WithLazySweep batches physical removal every period ticks.
func WithLazySweep(period Time) EngineOption { return engine.WithSweep(engine.SweepLazy, period) }

// WithTimingWheel drives eager expiration with a hierarchical timing
// wheel instead of a heap.
func WithTimingWheel() EngineOption { return engine.WithScheduler(engine.SchedulerWheel) }

// WithDurability makes the database durable: every mutation is logged to
// a write-ahead log under dir before it is acknowledged, periodic
// Checkpoint calls bound recovery time, and any state found in dir is
// recovered at open — including expirations whose tick passed while the
// process was down, which fire (exactly once, at their original texp) in
// the first Advance after recovery. Prefer OpenDurable, which surfaces
// recovery errors instead of panicking.
func WithDurability(dir string) EngineOption { return engine.WithDurability(dir) }

// WithVFS routes all durability disk access through fsys. Production
// code never needs this (the default is the OS passthrough); tests and
// fault drills inject a FaultFS to script fsync failures, ENOSPC, read
// errors and torn writes.
func WithVFS(fsys FS) EngineOption { return engine.WithVFS(fsys) }

// WithDiskRetryBackoff sets the initial interval between background
// disk-recovery attempts while degraded (default 250ms; doubling per
// failure, capped at 32x, jittered up to +25%).
func WithDiskRetryBackoff(d time.Duration) EngineOption { return engine.WithDiskRetryBackoff(d) }

// WithSlowQueryThreshold enables the slow-query log: any statement whose
// wall time reaches d has its full span tree recorded (SHOW TRACES,
// DB.Traces, /debug/traces). Default off.
func WithSlowQueryThreshold(d time.Duration) EngineOption {
	return engine.WithSlowQueryThreshold(d)
}

// WithEventLogCapacity sizes the lifecycle-event ring buffer (default
// engine.DefaultEventLogCapacity entries; oldest events are dropped and
// counted once it fills).
func WithEventLogCapacity(n int) EngineOption { return engine.WithEventLogCapacity(n) }

// DefaultResultCacheSize is the result cache's capacity when no
// WithResultCache option is given.
const DefaultResultCacheSize = engine.DefaultResultCacheSize

// WithResultCache sizes the validity-interval result cache in entries
// (default DefaultResultCacheSize); size <= 0 disables caching.
// The cache serves a repeated query with zero re-evaluation while
// now < ValidUntil and no base table it reads has been written — see
// Result.Validity and Result.Cached.
func WithResultCache(size int) EngineOption { return engine.WithResultCache(size) }

// Wire server options (see internal/wire for defaults).

// WithWireIdleTimeout disconnects a peer that neither completes a
// request nor accepts a response within d (default 30s).
func WithWireIdleTimeout(d time.Duration) WireServerOption { return wire.WithIdleTimeout(d) }

// WithWireMaxMessageBytes caps one decoded message, bounding what a
// hostile or corrupt peer can make the server allocate (default 8 MiB).
func WithWireMaxMessageBytes(n int64) WireServerOption { return wire.WithMaxMessageBytes(n) }

// WithWireMaxConns caps concurrent connections; excess dials are
// rejected cleanly with ErrWireServerBusy (default 256).
func WithWireMaxConns(n int) WireServerOption { return wire.WithMaxConns(n) }

// WithWireDrainTimeout bounds how long Close waits for in-flight
// requests before hard-closing stragglers (default 5s).
func WithWireDrainTimeout(d time.Duration) WireServerOption { return wire.WithDrainTimeout(d) }

// Wire client options.

// WithWireDialTimeout bounds one TCP dial + protocol handshake.
func WithWireDialTimeout(d time.Duration) WireClientOption { return wire.WithDialTimeout(d) }

// WithWireRequestTimeout bounds one round trip when the caller's
// context carries no deadline of its own (default 30s; 0 disables).
func WithWireRequestTimeout(d time.Duration) WireClientOption { return wire.WithRequestTimeout(d) }

// WithWireBackoff shapes reconnection: the delay starts at base,
// doubles per attempt up to max (each jittered ±50%), and maxRetries
// bounds attempts per operation.
func WithWireBackoff(base, max time.Duration, maxRetries int) WireClientOption {
	return wire.WithBackoff(base, max, maxRetries)
}

// WithWireJitterSeed seeds the reconnect jitter, making retry timing
// deterministic for tests.
func WithWireJitterSeed(seed int64) WireClientOption { return wire.WithJitterSeed(seed) }

// DB bundles an engine with a SQL session — the one-import entry point.
type DB struct {
	eng  *engine.Engine
	sess *sql.Session

	mu sync.Mutex
	// wireServers tracks servers created through NewWireServer so the
	// Prometheus exposition can aggregate their counters.
	wireServers []*wire.Server
}

// Open creates an empty database at tick 0. Trigger NOTIFY output is
// discarded; use OpenWithNotify to capture it.
//
// If opts include WithDurability, recovery runs here and a failure
// panics; OpenDurable is the error-returning form.
func Open(opts ...EngineOption) *DB { return OpenWithNotify(nil, opts...) }

// OpenWithNotify is Open with a sink for trigger notifications.
func OpenWithNotify(notify io.Writer, opts ...EngineOption) *DB {
	db, err := openDB(notify, opts...)
	if err != nil {
		panic(err)
	}
	return db
}

// OpenDurable opens (or creates) a durable database whose state lives
// under dir — shorthand for Open(WithDurability(dir), opts...) with
// recovery errors returned instead of panicking. Use DB.RecoveryInfo to
// see what was reconstructed, DB.Checkpoint to bound recovery time, and
// DB.Close to flush the log on shutdown.
func OpenDurable(dir string, opts ...EngineOption) (*DB, error) {
	return OpenDurableWithNotify(dir, nil, opts...)
}

// OpenDurableWithNotify is OpenDurable with a sink for trigger
// notifications.
func OpenDurableWithNotify(dir string, notify io.Writer, opts ...EngineOption) (*DB, error) {
	return openDB(notify, append(opts, engine.WithDurability(dir))...)
}

// openDB builds the engine + session pair and, when durability is
// configured, runs recovery — passing the SQL session's Exec as the view
// compiler, so logged CREATE VIEW statements recompile through the same
// code path that first created them.
func openDB(notify io.Writer, opts ...EngineOption) (*DB, error) {
	eng := engine.New(opts...)
	db := &DB{eng: eng, sess: sql.NewSession(eng, notify)}
	if eng.DurabilityDir() != "" {
		if _, err := eng.OpenDurability(func(def string) error {
			_, err := db.sess.Exec(def)
			return err
		}); err != nil {
			return nil, err
		}
	}
	// The sampler starts only after recovery has replayed: its first tick
	// then sees the post-replay baseline and the watchdog's
	// recovery-catchup check reports the true pending state.
	if mon := eng.Monitor(); mon != nil {
		mon.Start()
	}
	return db, nil
}

// Checkpoint writes a snapshot of the current state and truncates the
// write-ahead log to it, bounding both disk usage and the next
// recovery's replay work. Errors unless the database was opened with
// durability.
func (db *DB) Checkpoint() error { return db.eng.Checkpoint() }

// RecoveryInfo reports what recovery reconstructed at open: nil for a
// memory-only database, Recovered=false for a durable open of a fresh
// directory.
func (db *DB) RecoveryInfo() *RecoveryInfo { return db.eng.Recovery() }

// DurabilityState reports the database's durability posture: memory-only,
// healthy, or disk-degraded. While degraded every mutation returns
// ErrReadOnly, reads and ADVANCE keep working from memory, and a
// background goroutine retries recovery; on success the full in-memory
// state is checkpointed to a fresh log generation and writes resume.
func (db *DB) DurabilityState() DurabilityState { return db.eng.DurabilityState() }

// TryDiskRecovery runs one synchronous disk-recovery attempt (the same
// routine the background loop retries) and reports its outcome. Healthy
// or memory-only databases return nil immediately.
func (db *DB) TryDiskRecovery() error { return db.eng.TryDiskRecovery() }

// Close stops the monitor sampler (if any), then flushes and closes the
// write-ahead log (a no-op for a memory-only database). The database
// must not be used afterwards.
func (db *DB) Close() error {
	if mon := db.eng.Monitor(); mon != nil {
		mon.Stop()
	}
	return db.eng.CloseDurability()
}

// Query runs one SQL statement and returns its Result, stamped with the
// validity window [Validity.At, Validity.ValidUntil) the engine derived
// for it and with Cached reporting whether the answer came from the
// result cache with zero re-evaluation. Query is the documented entry
// point for the SQL surface; Exec is a long-standing alias. Rows come
// out of Result.Rows() (presentation order under ORDER BY/LIMIT,
// deterministic set order otherwise).
func (db *DB) Query(q string) (*Result, error) { return db.sess.Exec(q) }

// QueryContext is Query honouring ctx at the statement boundary. A
// statement runs against in-memory state and is not interruptible
// mid-flight; ctx is checked before parsing and its error returned, the
// same delegation pattern the wire client's *Context methods use.
func (db *DB) QueryContext(ctx context.Context, q string) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return db.sess.Exec(q)
}

// Exec runs one SQL statement. It is an alias of Query, kept because
// every release so far spelled the entry point this way.
func (db *DB) Exec(q string) (*Result, error) { return db.Query(q) }

// ExecContext is Exec honouring ctx at the statement boundary (an alias
// of QueryContext).
func (db *DB) ExecContext(ctx context.Context, q string) (*Result, error) {
	return db.QueryContext(ctx, q)
}

// ExecScript runs a semicolon-separated script, returning the last
// result.
func (db *DB) ExecScript(q string) (*Result, error) { return db.sess.ExecScript(q) }

// MustExec is Exec, panicking on error — for examples and tests.
func (db *DB) MustExec(q string) *Result {
	res, err := db.sess.Exec(q)
	if err != nil {
		panic(err)
	}
	return res
}

// Plan lowers a SELECT to an algebra expression without evaluating it.
func (db *DB) Plan(query string) (Expr, error) { return db.sess.PlanQuery(query) }

// Engine exposes the programmatic engine API (tables, triggers, clock,
// views).
func (db *DB) Engine() *Engine { return db.eng }

// Now returns the current tick.
func (db *DB) Now() Time { return db.eng.Now() }

// Advance moves the logical clock forward, firing expirations.
func (db *DB) Advance(to Time) error { return db.eng.Advance(to) }

// Insert adds a tuple with an absolute expiration time.
func (db *DB) Insert(table string, t Tuple, texp Time) error {
	return db.eng.Insert(table, t, texp)
}

// InsertTTL adds a tuple that lives for ttl ticks from now.
func (db *DB) InsertTTL(table string, t Tuple, ttl Time) error {
	return db.eng.InsertTTL(table, t, ttl)
}

// OnExpire registers an expiration trigger on a table.
func (db *DB) OnExpire(table string, fn TriggerFunc) error {
	return db.eng.OnExpire(table, fn)
}

// CreateView registers and materialises a view over an algebra
// expression.
func (db *DB) CreateView(name string, expr Expr, opts ...ViewOption) (*View, error) {
	return db.eng.CreateView(name, expr, opts...)
}

// ReadView answers a query against a named view at the current tick. The
// ReadInfo says how the answer was produced — cache hit, recomputation,
// patched, or a read moved to another instant — at which instant it
// holds, and under which trace ID its lifecycle events were logged;
// discarding it loses exactly the validity information the paper's
// invalidation analysis computes.
func (db *DB) ReadView(name string) (*Relation, ReadInfo, error) {
	return db.eng.ReadView(name)
}

// ReadViewContext is ReadView honouring ctx at the read boundary: ctx is
// checked before the read starts and its error returned, matching the
// wire client's *Context delegation (an in-memory view read is not
// interruptible mid-flight).
func (db *DB) ReadViewContext(ctx context.Context, name string) (*Relation, ReadInfo, error) {
	if err := ctx.Err(); err != nil {
		return nil, ReadInfo{}, err
	}
	return db.eng.ReadView(name)
}

// ReadViewRows is a convenience shim over ReadView for callers that only
// want the visible rows.
//
// Deprecated: query the view instead — db.Query("SELECT * FROM v") —
// and read Result.Rows(); that path carries the validity window and the
// Cached flag this shim discards. Kept for compatibility.
func (db *DB) ReadViewRows(name string) ([]Row, error) {
	rel, info, err := db.eng.ReadView(name)
	if err != nil {
		return nil, err
	}
	return rel.RowsSorted(info.At), nil
}

// NewWireServer exposes this database's relations to remote view nodes
// over the fault-tolerant wire protocol. Call Listen on the result to
// start serving, and Close (or Shutdown with a context) to drain and
// stop.
func (db *DB) NewWireServer(opts ...WireServerOption) *WireServer {
	s := wire.NewServer(db.eng, opts...)
	db.mu.Lock()
	db.wireServers = append(db.wireServers, s)
	db.mu.Unlock()
	db.registerWireSeries(s)
	return s
}

// DialWire connects a remote view node to a wire server, performing the
// protocol handshake. See WireClient for the degraded-read guarantees.
func DialWire(addr string, opts ...WireClientOption) (*WireClient, error) {
	return wire.Dial(addr, opts...)
}

// Metrics returns a snapshot of the engine's observability counters:
// insert/delete/expiry totals, Advance latency, scheduler load, and the
// per-view recompute vs patch vs cache-hit split.
func (db *DB) Metrics() MetricsSnapshot { return db.eng.Metrics() }

// SQLMetrics returns the SQL session's statement and latency counters.
func (db *DB) SQLMetrics() SQLMetricsSnapshot { return db.sess.Metrics().Snapshot() }

// CacheMetrics returns the result cache's counters and hit-latency
// histogram, or ErrCacheDisabled (wrapped) when the cache is off. The
// same block rides inside Metrics().ResultCache when enabled.
func (db *DB) CacheMetrics() (CacheMetrics, error) { return db.eng.ResultCacheStats() }

// SetResultCache resizes the result cache at runtime; size <= 0 disables
// it. The previous cache's entries and counters are discarded.
func (db *DB) SetResultCache(size int) { db.eng.SetResultCache(size) }

// MetricsHandler serves the combined engine + SQL snapshot as
// expvar-style JSON — mount it on any mux (expsyncd -metrics does).
// `?format=prometheus` switches to text exposition format 0.0.4
// (WritePrometheus), so one endpoint serves humans and scrapers.
func (db *DB) MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("format") == "prometheus" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			db.WritePrometheus(w)
			return
		}
		snap := struct {
			Engine MetricsSnapshot    `json:"engine"`
			SQL    SQLMetricsSnapshot `json:"sql"`
		}{db.eng.Metrics(), db.sess.Metrics().Snapshot()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

// Events returns the retained lifecycle events, oldest first: expiry
// batches, sweeps, compactions, view invalidations/recomputes/patches,
// budget evictions, and wire materialisations, each tagged with the
// trace ID of the statement or Advance that caused it.
func (db *DB) Events() []Event { return db.eng.Events().Snapshot(0) }

// EventsDropped reports how many lifecycle events have been discarded by
// the ring buffer (oldest first) since Open.
func (db *DB) EventsDropped() uint64 { return db.eng.Events().Dropped() }

// Traces returns the retained slow-query traces, oldest first. Empty
// unless the slow-query log was enabled with WithSlowQueryThreshold or
// SetSlowQueryThreshold.
func (db *DB) Traces() []Trace { return db.eng.Traces().Snapshot() }

// SetSlowQueryThreshold changes the slow-query threshold at runtime;
// d <= 0 disables recording. Safe to call concurrently with statements.
func (db *DB) SetSlowQueryThreshold(d time.Duration) { db.eng.SetSlowQueryThreshold(d) }

// EventsHandler serves the lifecycle-event ring as JSON:
// {"events": [...], "dropped": N, "total": N} — mount it on any mux
// (expsyncd -metrics mounts it at /debug/events).
func (db *DB) EventsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		log := db.eng.Events()
		snap := struct {
			Events  []Event `json:"events"`
			Dropped uint64  `json:"dropped"`
			Total   uint64  `json:"total"`
		}{log.Snapshot(0), log.Dropped(), log.Total()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}

// TracesHandler serves the slow-query trace ring as JSON:
// {"traces": [...], "total": N} — mount it on any mux (expsyncd
// -metrics mounts it at /debug/traces).
func (db *DB) TracesHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		store := db.eng.Traces()
		snap := struct {
			Traces []Trace `json:"traces"`
			Total  uint64  `json:"total"`
		}{store.Snapshot(), store.Total()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(snap)
	})
}
